// The parallel execution engine's contract: for any thread count, ExactMaxRS
// returns a bit-identical MaxRSResult (location, weight, region), and the
// engine only reschedules work — it never changes what is read or written,
// so the block-transfer counts match the serial engine too.
//
// The corpus reuses the fixed-seed regression recipe of
// fuzz_differential_test (duplicate coordinates + zero weights), the two
// classic sweep edge cases where a nondeterministic tie-break would first
// show up.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/exact_maxrs.h"
#include "io/env.h"
#include "test_util.h"

namespace maxrs {
namespace {

struct DeterminismCase {
  uint64_t seed;
  size_t n;
  uint64_t extent;
  double rect;
  size_t fanout;
  uint64_t base_max;
  // Golden serial-engine block transfers, captured at the introduction of
  // the parallel engine (PR 2). A change here means the serial I/O behavior
  // changed — acceptable only as a deliberate, explained decision.
  uint64_t golden_reads;
  uint64_t golden_writes;
};

std::vector<SpatialObject> MakeObjects(const DeterminismCase& c) {
  auto objects =
      testing::RandomIntObjects(c.n, c.extent, c.seed, /*random_weights=*/true);
  for (size_t i = 2; i < objects.size(); i += 3) objects[i].w = 0.0;
  objects.reserve(c.n + c.n / 4);
  for (size_t i = 0; i < c.n / 4; ++i) objects.push_back(objects[i]);
  return objects;
}

MaxRSOptions OptionsFor(const DeterminismCase& c, size_t num_threads,
                        bool read_ahead = false) {
  MaxRSOptions options;
  options.rect_width = c.rect;
  options.rect_height = c.rect;
  options.memory_bytes = 8 << 10;
  options.fanout = c.fanout;
  options.base_case_max_pieces = c.base_max;
  options.num_threads = num_threads;
  options.read_ahead = read_ahead;
  return options;
}

MaxRSResult RunAt(const std::vector<SpatialObject>& objects,
                  const DeterminismCase& c, size_t num_threads,
                  bool read_ahead = false) {
  auto env = NewMemEnv(512);
  auto result =
      RunExactMaxRS(*env, objects, OptionsFor(c, num_threads, read_ahead));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : MaxRSResult{};
}

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismTest, ResultsBitIdenticalAcrossThreadCounts) {
  const DeterminismCase c = GetParam();
  const auto objects = MakeObjects(c);

  const MaxRSResult serial = RunAt(objects, c, 1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const MaxRSResult parallel = RunAt(objects, c, threads);
    const std::string tag =
        "seed " + std::to_string(c.seed) + " threads " + std::to_string(threads);
    // Bit-identical result: exact double comparison is the point.
    EXPECT_EQ(parallel.total_weight, serial.total_weight) << tag;
    EXPECT_EQ(parallel.location.x, serial.location.x) << tag;
    EXPECT_EQ(parallel.location.y, serial.location.y) << tag;
    EXPECT_EQ(parallel.region.x_lo, serial.region.x_lo) << tag;
    EXPECT_EQ(parallel.region.x_hi, serial.region.x_hi) << tag;
    EXPECT_EQ(parallel.region.y_lo, serial.region.y_lo) << tag;
    EXPECT_EQ(parallel.region.y_hi, serial.region.y_hi) << tag;
    // The schedule changes, the work does not: block transfers match.
    EXPECT_EQ(parallel.stats.io.blocks_read, serial.stats.io.blocks_read) << tag;
    EXPECT_EQ(parallel.stats.io.blocks_written, serial.stats.io.blocks_written)
        << tag;
    // Structural stats are schedule-independent too.
    EXPECT_EQ(parallel.stats.base_cases, serial.stats.base_cases) << tag;
    EXPECT_EQ(parallel.stats.merges, serial.stats.merges) << tag;
    EXPECT_EQ(parallel.stats.total_spans, serial.stats.total_spans) << tag;
  }
}

TEST_P(DeterminismTest, ReadAheadBitIdenticalToSynchronousPath) {
  // The async read-ahead layer (io/prefetch_reader.h) reschedules fetches,
  // never the work: with read_ahead on, the result AND the block transfer
  // counts must match the synchronous serial engine bit-for-bit at every
  // thread count — the acceptance criterion of the prefetch layer.
  const DeterminismCase c = GetParam();
  const auto objects = MakeObjects(c);

  const MaxRSResult serial = RunAt(objects, c, 1, /*read_ahead=*/false);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const MaxRSResult prefetched =
        RunAt(objects, c, threads, /*read_ahead=*/true);
    const std::string tag = "seed " + std::to_string(c.seed) +
                            " threads " + std::to_string(threads) +
                            " read_ahead";
    EXPECT_EQ(prefetched.total_weight, serial.total_weight) << tag;
    EXPECT_EQ(prefetched.location.x, serial.location.x) << tag;
    EXPECT_EQ(prefetched.location.y, serial.location.y) << tag;
    EXPECT_EQ(prefetched.region.x_lo, serial.region.x_lo) << tag;
    EXPECT_EQ(prefetched.region.x_hi, serial.region.x_hi) << tag;
    EXPECT_EQ(prefetched.region.y_lo, serial.region.y_lo) << tag;
    EXPECT_EQ(prefetched.region.y_hi, serial.region.y_hi) << tag;
    EXPECT_EQ(prefetched.stats.io.blocks_read, serial.stats.io.blocks_read)
        << tag;
    EXPECT_EQ(prefetched.stats.io.blocks_written,
              serial.stats.io.blocks_written)
        << tag;
    EXPECT_EQ(prefetched.stats.base_cases, serial.stats.base_cases) << tag;
    EXPECT_EQ(prefetched.stats.merges, serial.stats.merges) << tag;
    EXPECT_EQ(prefetched.stats.total_spans, serial.stats.total_spans) << tag;
  }
}

TEST_P(DeterminismTest, SerialEngineMatchesGoldenIoCounts) {
  // Pins the serial engine's block transfers to golden values, so an
  // accidental change to the num_threads=1 code path (which must remain the
  // exact pre-engine serial baseline) fails loudly. The corpus inputs are
  // fixed-seed, so these counts are stable by construction.
  const DeterminismCase c = GetParam();
  const MaxRSResult serial = RunAt(MakeObjects(c), c, 1);
  EXPECT_EQ(serial.stats.io.blocks_read, c.golden_reads)
      << "seed " << c.seed << ": serial read count drifted from baseline";
  EXPECT_EQ(serial.stats.io.blocks_written, c.golden_writes)
      << "seed " << c.seed << ": serial write count drifted from baseline";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DeterminismTest,
    ::testing::Values(
        // seed, n, extent, rect, fanout, base_max, golden r/w
        DeterminismCase{0xC0FFEE01, 120, 12, 4, 2, 8, 347, 364},
        DeterminismCase{0xC0FFEE02, 200, 16, 6, 3, 16, 487, 496},
        DeterminismCase{0xC0FFEE03, 80, 6, 2, 5, 4, 152, 168},  // dense collisions
        DeterminismCase{0xC0FFEE04, 256, 24, 10, 2, 32, 727, 715},
        DeterminismCase{0xC0FFEE05, 150, 10, 30, 4, 8, 442, 458},  // rect covers all
        DeterminismCase{0xC0FFEE06, 60, 4, 3, 7, 6, 127, 141}));   // tiny domain

}  // namespace
}  // namespace maxrs
