#include "core/extensions.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "test_util.h"

namespace maxrs {
namespace {

MaxRSOptions SmallOptions(double rect) {
  MaxRSOptions options;
  options.rect_width = rect;
  options.rect_height = rect;
  options.memory_bytes = 1 << 14;
  options.fanout = 3;
  options.base_case_max_pieces = 16;
  return options;
}

/// Brute-force MinRS over centers strictly inside the bounding box: the min
/// is piecewise constant with breakpoints at o.x +- w/2 (and the box edges),
/// so probing the midpoints of consecutive breakpoints is exact for the open
/// domain the library defines.
double BruteForceMinRS(const std::vector<SpatialObject>& objects, double w,
                       double h) {
  Rect box = BoundingBox(objects);
  if (box.x_lo == box.x_hi) box.x_hi = box.x_lo + 1.0;
  if (box.y_lo == box.y_hi) box.y_hi = box.y_lo + 1.0;
  auto breakpoints = [&](bool x_axis) {
    std::vector<double> values = {x_axis ? box.x_lo : box.y_lo,
                                  x_axis ? box.x_hi : box.y_hi};
    for (const auto& o : objects) {
      const double c = x_axis ? o.x : o.y;
      const double half = (x_axis ? w : h) / 2.0;
      for (double v : {c - half, c + half}) {
        if (v >= values[0] && v <= values[1]) values.push_back(v);
      }
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::vector<double> candidates;
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      candidates.push_back((values[i] + values[i + 1]) / 2.0);
    }
    return candidates;
  };
  double best = kInf;
  for (double cx : breakpoints(true)) {
    for (double cy : breakpoints(false)) {
      best = std::min(best, CoveredWeight(objects, Rect::Centered({cx, cy}, w, h)));
    }
  }
  return best;
}

TEST(TopKMaxRSTest, KEqualsOneMatchesExactMaxRS) {
  auto objects = testing::RandomIntObjects(300, 100, 5);
  auto topk = TopKMaxRSInMemory(objects, 10, 10, 1);
  ASSERT_EQ(topk.size(), 1u);
  const MaxRSResult single = ExactMaxRSInMemory(objects, 10, 10);
  EXPECT_EQ(topk[0].total_weight, single.total_weight);
}

TEST(TopKMaxRSTest, ResultsSortedAndRealizable) {
  auto objects = testing::RandomIntObjects(400, 200, 7, /*random_weights=*/true);
  auto topk = TopKMaxRSInMemory(objects, 12, 12, 5);
  ASSERT_EQ(topk.size(), 5u);
  for (size_t i = 1; i < topk.size(); ++i) {
    EXPECT_GE(topk[i - 1].total_weight, topk[i].total_weight);
  }
  for (const RankedRegion& r : topk) {
    EXPECT_EQ(CoveredWeight(objects, Rect::Centered(r.location, 12, 12)),
              r.total_weight);
  }
}

TEST(TopKMaxRSTest, KLargerThanStrataCount) {
  std::vector<SpatialObject> objects = {{5, 5, 1.0}};
  auto topk = TopKMaxRSInMemory(objects, 4, 4, 100);
  // One rectangle yields two strata (open + close).
  EXPECT_LE(topk.size(), 2u);
  ASSERT_FALSE(topk.empty());
  EXPECT_EQ(topk[0].total_weight, 1.0);
}

TEST(TopKMaxRSTest, ExternalMatchesInMemory) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1500, 400, 9);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  MaxRSStats stats;
  auto external = RunTopKMaxRS(*env, "data", SmallOptions(8), 4, &stats);
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  auto internal = TopKMaxRSInMemory(objects, 8, 8, 4);
  ASSERT_EQ(external->size(), internal.size());
  for (size_t i = 0; i < internal.size(); ++i) {
    EXPECT_EQ((*external)[i].total_weight, internal[i].total_weight) << i;
  }
  EXPECT_GT(stats.recursion_levels, 0u);
}

TEST(TopKMaxRSTest, EmptyDataset) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteDataset(*env, "data", {}).ok());
  MaxRSOptions options;
  options.memory_bytes = 1 << 14;
  auto topk = RunTopKMaxRS(*env, "data", options, 3);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->empty());
}

struct MinCase {
  size_t n;
  uint64_t extent;
  double rect;
  bool weights;
};

class MinRSOracleTest : public ::testing::TestWithParam<MinCase> {};

TEST_P(MinRSOracleTest, MatchesBruteForce) {
  const MinCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed, c.weights);
    const MaxRSResult got = MinRSInMemory(objects, c.rect, c.rect);
    const double want = BruteForceMinRS(objects, c.rect, c.rect);
    ASSERT_EQ(got.total_weight, want)
        << "n=" << c.n << " extent=" << c.extent << " seed=" << seed;
    // The witness location realizes the weight and lies in the domain.
    EXPECT_EQ(CoveredWeight(objects, Rect::Centered(got.location, c.rect, c.rect)),
              got.total_weight);
    EXPECT_TRUE(got.stats.domain.Contains(got.location));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MinRSOracleTest,
    ::testing::Values(MinCase{20, 10, 4, false},    // dense: nonzero minimum
                      MinCase{40, 12, 8, true},     // very dense, weighted
                      MinCase{60, 100, 10, false},  // sparse: minimum 0
                      MinCase{100, 24, 10, true},
                      MinCase{30, 8, 12, false}));  // rect covers ~whole box

TEST(MinRSTest, DenseGridHasPositiveMinimum) {
  // A full 10x10 unit grid with a 3x3 window: every placement in the box
  // covers at least a 2x2 block of points... actually at least 4 points.
  std::vector<SpatialObject> objects;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      objects.push_back({static_cast<double>(x), static_cast<double>(y), 1.0});
    }
  }
  const MaxRSResult got = MinRSInMemory(objects, 3, 3);
  EXPECT_GT(got.total_weight, 0.0);
  EXPECT_EQ(got.total_weight, BruteForceMinRS(objects, 3, 3));
}

TEST(MinRSTest, ExternalMatchesInMemory) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1200, 60, 3, /*random_weights=*/true);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  auto external = RunMinRS(*env, "data", SmallOptions(10));
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  const MaxRSResult internal = MinRSInMemory(objects, 10, 10);
  EXPECT_EQ(external->total_weight, internal.total_weight);
  EXPECT_EQ(CoveredWeight(objects, Rect::Centered(external->location, 10, 10)),
            external->total_weight);
}

TEST(MinRSTest, EmptyAndDegenerateInputs) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteDataset(*env, "empty", {}).ok());
  MaxRSOptions options;
  options.memory_bytes = 1 << 14;
  auto empty = RunMinRS(*env, "empty", options);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->total_weight, 0.0);

  // All objects at one point: degenerate bounding box is widened.
  std::vector<SpatialObject> point(5, SpatialObject{3, 3, 2.0});
  const MaxRSResult got = MinRSInMemory(point, 1, 1);
  EXPECT_GE(got.total_weight, 0.0);
  EXPECT_LE(got.total_weight, 10.0);
}

TEST(MinRSTest, MinNeverExceedsMax) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto objects = testing::RandomIntObjects(150, 40, seed);
    const MaxRSResult min_r = MinRSInMemory(objects, 6, 6);
    const MaxRSResult max_r = ExactMaxRSInMemory(objects, 6, 6);
    EXPECT_LE(min_r.total_weight, max_r.total_weight) << "seed=" << seed;
  }
}

// --- Greedy object-disjoint MaxkRS -------------------------------------------

TEST(GreedyKMaxRSTest, FirstPlacementIsTheOptimum) {
  auto objects = testing::RandomIntObjects(300, 120, 3, /*weights=*/true);
  auto greedy = GreedyKMaxRSInMemory(objects, 10, 10, 3);
  ASSERT_FALSE(greedy.empty());
  const MaxRSResult best = ExactMaxRSInMemory(objects, 10, 10);
  EXPECT_EQ(greedy[0].total_weight, best.total_weight);
}

TEST(GreedyKMaxRSTest, GreedySemanticsReplay) {
  // Re-simulate the greedy process independently and compare round scores.
  auto objects = testing::RandomIntObjects(400, 150, 7, /*weights=*/true);
  auto greedy = GreedyKMaxRSInMemory(objects, 12, 12, 4);
  std::vector<SpatialObject> remaining = objects;
  double total = 0;
  for (const RankedRegion& placement : greedy) {
    const Rect served = Rect::Centered(placement.location, 12, 12);
    EXPECT_EQ(CoveredWeight(remaining, served), placement.total_weight);
    remaining.erase(
        std::remove_if(
            remaining.begin(), remaining.end(),
            [&served](const SpatialObject& o) { return served.Contains(o); }),
        remaining.end());
    total += placement.total_weight;
  }
  // Weights are non-increasing, and total never exceeds the dataset weight.
  for (size_t i = 1; i < greedy.size(); ++i) {
    EXPECT_LE(greedy[i].total_weight, greedy[i - 1].total_weight);
  }
  double dataset_total = 0;
  for (const auto& o : objects) dataset_total += o.w;
  EXPECT_LE(total, dataset_total + 1e-9);
}

TEST(GreedyKMaxRSTest, StopsWhenNothingRemains) {
  // 5 tight points, window large enough to cover them all at once.
  std::vector<SpatialObject> objects = {
      {1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {2, 1, 1}, {1, 2, 1}};
  auto greedy = GreedyKMaxRSInMemory(objects, 10, 10, 4);
  ASSERT_EQ(greedy.size(), 1u);
  EXPECT_EQ(greedy[0].total_weight, 5.0);
}

TEST(GreedyKMaxRSTest, ExternalMatchesInMemory) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1200, 300, 11, /*weights=*/true);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  MaxRSStats stats;
  auto external = RunGreedyKMaxRS(*env, "data", SmallOptions(10), 3, &stats);
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  auto internal = GreedyKMaxRSInMemory(objects, 10, 10, 3);
  ASSERT_EQ(external->size(), internal.size());
  for (size_t i = 0; i < internal.size(); ++i) {
    EXPECT_EQ((*external)[i].total_weight, internal[i].total_weight) << i;
  }
  // The original dataset file is left untouched.
  auto back = ReadDataset(*env, "data");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), objects.size());
}

TEST(GreedyKMaxRSTest, EmptyDataset) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteDataset(*env, "data", {}).ok());
  MaxRSOptions options;
  options.memory_bytes = 1 << 14;
  auto greedy = RunGreedyKMaxRS(*env, "data", options, 5);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->empty());
}

}  // namespace
}  // namespace maxrs
