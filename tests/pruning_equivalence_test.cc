// Pruning-equivalence battery for index-pruned serving
// (serve/maxrs_server.h, ServePruningMode; index/shard_agg_index.h).
//
// The aggregate shard index lets the server skip shards whose weight upper
// bound cannot beat the best candidate found so far — but pruning is only
// admissible if it is invisible in the answer and strictly helpful in the
// I/O ledger:
//
//   - bit-identical answers to un-pruned serving across shard counts
//     {1, 2, 7, 16, 64} x worker counts {1, 2, 8} x routing modes
//     {streaming, materialized} x read_ahead on/off, with per-query block
//     counts deterministic within each configuration and never above the
//     un-pruned pipeline's;
//   - on weight-skewed data with a selective rect, cold queries at >= 16
//     shards must actually skip shards (shards_pruned > 0 — i.e. open
//     strictly fewer shards than the shard count) and the cold block count
//     must grow sublinearly in the shard count;
//   - the pruning counters themselves are part of the determinism
//     contract: repeated cold runs of one configuration report the same
//     shards_pruned / bound_skips, and an un-pruned server reports zero.
//
// Data is weight-skewed (a heavy strip holds most of the mass) so
// the bound genuinely bites at high shard counts; at 1-2 shards the same
// battery degenerates to the no-pruning case and pins that the phased
// executor is I/O-identical to the flat one.
#include <cmath>
#include <cstddef>
#include <vector>

#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr size_t kShardCounts[] = {1, 2, 7, 16, 64};
constexpr size_t kWorkerCounts[] = {1, 2, 8};
constexpr size_t kIngestMemoryBytes = 512 * 1024;
constexpr size_t kQueryMemoryBytes = 64 * 1024;
// A selective rect sized for the heavy strip, and a broad rect whose
// expanded window reaches most slabs (little to prune).
const double kRects[][2] = {{200, 200}, {1500, 1500}};

// Integer-coordinate weight-skewed set: every third point lands in a heavy
// strip (x in [4000, 6000], y in [0, 300], weight 50); the rest stay unit-
// weight background over [0, 6000]^2. The strip is wide in x relative to
// the 200-wide query rect, so even at 64 equal-count shards the strip
// shards' slab-local tuples genuinely see the heavy mass (a tight point
// cluster would lift everything into cross-shard spans, which the
// branch-and-bound incumbent deliberately under-counts), while a pure-
// background shard's upper bound tops out near three unit-weight shard
// weights — far below one well-placed rect over the strip. That is the
// regime where the per-shard upper bound prunes.
std::vector<SpatialObject> SkewedIntObjects(size_t n, uint64_t seed) {
  std::vector<SpatialObject> objects =
      testing::RandomIntObjects(n, /*extent=*/6000, seed);
  for (size_t i = 0; i < objects.size(); i += 3) {
    objects[i].x = 4000.0 + std::floor(objects[i].x / 3.0);
    objects[i].y = std::floor(objects[i].y / 20.0);
    objects[i].w = 50.0;
  }
  return objects;
}

std::unique_ptr<Env> MakeSkewedEnv(uint64_t seed, size_t n) {
  auto env = NewMemEnv(4096);
  EXPECT_TRUE(
      WriteDataset(*env, kDatasetFile, SkewedIntObjects(n, seed)).ok());
  return env;
}

MaxRSServerOptions BaseServerOptions(size_t workers) {
  MaxRSServerOptions options;
  options.num_workers = workers;
  options.memory_bytes = kQueryMemoryBytes;
  options.cache_entries = 0;  // every submit pays its full pipeline
  return options;
}

void ExpectBitIdentical(const MaxRSResult& a, const MaxRSResult& b) {
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.location, b.location);
  EXPECT_EQ(a.region, b.region);
}

TEST(PruningEquivalenceTest, MatchesUnprunedAcrossShardWorkerModeReadAhead) {
  constexpr size_t kN = 2816;  // realizes all 64 shards (shard_property_test)
  const uint64_t kSeed = 7;
  for (size_t shards : kShardCounts) {
    auto env = MakeSkewedEnv(kSeed, kN);
    DatasetHandleOptions ingest;
    ingest.shard_count = shards;
    ingest.memory_bytes = kIngestMemoryBytes;
    auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    ASSERT_EQ(handle->shards().size(), shards);
    ASSERT_NE(handle->agg_index(), nullptr);

    for (ServeRoutingMode routing :
         {ServeRoutingMode::kStreaming, ServeRoutingMode::kMaterialized}) {
      // Un-pruned oracle in the same routing mode: answers, per-query
      // block counts, and zero pruning counters.
      std::vector<MaxRSResult> oracle;
      {
        MaxRSServerOptions options = BaseServerOptions(1);
        options.routing_mode = routing;
        options.pruning_mode = ServePruningMode::kOff;
        MaxRSServer server(*env, *handle, options);
        for (const auto& rect : kRects) {
          auto r = server.Submit(rect[0], rect[1]);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_EQ(r->stats.io.shards_pruned, 0u)
              << "un-pruned serving must not report pruned shards";
          EXPECT_EQ(r->stats.io.bound_skips, 0u);
          oracle.push_back(*r);
        }
      }

      // Pruned serving at every worker count x read_ahead: bit-identical
      // answers, block counts never above the un-pruned pipeline's, and
      // the whole I/O ledger (including the pruning counters)
      // deterministic across the sub-matrix.
      std::vector<IoStatsSnapshot> pruned_io(2);
      bool first_config = true;
      for (size_t workers : kWorkerCounts) {
        for (bool read_ahead : {false, true}) {
          MaxRSServerOptions options = BaseServerOptions(workers);
          options.routing_mode = routing;
          options.read_ahead = read_ahead;
          ASSERT_EQ(options.pruning_mode, ServePruningMode::kAuto);
          MaxRSServer server(*env, *handle, options);
          for (size_t q = 0; q < 2; ++q) {
            auto served = server.Submit(kRects[q][0], kRects[q][1]);
            ASSERT_TRUE(served.ok())
                << served.status().ToString() << " (" << shards << " shards, "
                << workers << " workers, read_ahead=" << read_ahead << ")";
            ExpectBitIdentical(*served, oracle[q]);
            EXPECT_LE(served->stats.io.total(), oracle[q].stats.io.total())
                << shards << " shards, query " << q
                << ": pruning must never add block transfers";
            if (shards < 2) {
              EXPECT_EQ(served->stats.io.shards_pruned, 0u)
                  << "single-shard serving has nothing to prune";
            }
            if (first_config) {
              pruned_io[q] = served->stats.io;
            } else {
              EXPECT_EQ(served->stats.io.blocks_read,
                        pruned_io[q].blocks_read)
                  << shards << " shards, " << workers
                  << " workers, read_ahead=" << read_ahead << ", query " << q;
              EXPECT_EQ(served->stats.io.blocks_written,
                        pruned_io[q].blocks_written)
                  << shards << " shards, " << workers
                  << " workers, read_ahead=" << read_ahead << ", query " << q;
              EXPECT_EQ(served->stats.io.shards_pruned,
                        pruned_io[q].shards_pruned)
                  << "plan-time pruning must be schedule-independent";
              EXPECT_EQ(served->stats.io.bound_skips,
                        pruned_io[q].bound_skips)
                  << "bound skips must be schedule-independent";
            }
          }
          first_config = false;
        }
      }
    }
  }
}

TEST(PruningEquivalenceTest, SelectiveRectPrunesAndColdIoSublinear) {
  // The selective rect over weight-skewed data is the case the index exists
  // for: at >= 16 shards the cold query must open strictly fewer shards
  // than the shard count (shards_pruned > 0), spend fewer blocks than the
  // un-pruned pipeline, and the cold block count must grow sublinearly in
  // the shard count — quadrupling the shards from 16 to 64 must not
  // quadruple the blocks.
  constexpr size_t kN = 2816;
  const double kRectW = 200, kRectH = 200;
  for (ServeRoutingMode routing :
       {ServeRoutingMode::kStreaming, ServeRoutingMode::kMaterialized}) {
    uint64_t pruned_io_16 = 0;
    for (size_t shards : {size_t{16}, size_t{64}}) {
      auto env = MakeSkewedEnv(19, kN);
      DatasetHandleOptions ingest;
      ingest.shard_count = shards;
      ingest.memory_bytes = kIngestMemoryBytes;
      auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();

      MaxRSServerOptions unpruned = BaseServerOptions(1);
      unpruned.routing_mode = routing;
      unpruned.pruning_mode = ServePruningMode::kOff;
      MaxRSServer unpruned_server(*env, *handle, unpruned);
      auto reference = unpruned_server.Submit(kRectW, kRectH);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();

      MaxRSServerOptions options = BaseServerOptions(1);
      options.routing_mode = routing;
      MaxRSServer server(*env, *handle, options);
      auto served = server.Submit(kRectW, kRectH);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ExpectBitIdentical(*served, *reference);

      EXPECT_GT(served->stats.io.shards_pruned, 0u)
          << shards << " shards: the selective rect must skip shards";
      EXPECT_LT(served->stats.io.shards_pruned, shards)
          << "at least the winning shard must survive";
      EXPECT_LT(served->stats.io.total(), reference->stats.io.total())
          << shards << " shards: pruning must save blocks on this workload";

      if (shards == 16) {
        pruned_io_16 = served->stats.io.total();
      } else {
        EXPECT_LT(served->stats.io.total(), 4 * pruned_io_16)
            << "cold blocks must grow sublinearly in the shard count";
      }
    }
  }
}

TEST(PruningEquivalenceTest, ColdCountersDeterministicAcrossRuns) {
  // Two fresh cold servers over the same immutable dataset must agree on
  // every observable: answer, block counts, and both pruning counters.
  constexpr size_t kN = 2816;
  constexpr size_t kShards = 16;
  auto env = MakeSkewedEnv(23, kN);
  DatasetHandleOptions ingest;
  ingest.shard_count = kShards;
  ingest.memory_bytes = kIngestMemoryBytes;
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  std::vector<MaxRSResult> runs;
  for (int run = 0; run < 2; ++run) {
    MaxRSServerOptions options = BaseServerOptions(2);
    MaxRSServer server(*env, *handle, options);
    auto served = server.Submit(kRects[0][0], kRects[0][1]);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    runs.push_back(*served);
  }
  ExpectBitIdentical(runs[0], runs[1]);
  EXPECT_EQ(runs[0].stats.io.blocks_read, runs[1].stats.io.blocks_read);
  EXPECT_EQ(runs[0].stats.io.blocks_written, runs[1].stats.io.blocks_written);
  EXPECT_EQ(runs[0].stats.io.shards_pruned, runs[1].stats.io.shards_pruned);
  EXPECT_EQ(runs[0].stats.io.bound_skips, runs[1].stats.io.bound_skips);
}

}  // namespace
}  // namespace maxrs
