// End-to-end integration: realistic clustered datasets, every public entry
// point, cross-algorithm agreement, and both Env backends.
#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "circle/approx_maxcrs.h"
#include "circle/exact_maxcrs.h"
#include "core/exact_maxrs.h"
#include "core/extensions.h"
#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "index/agg_rtree.h"
#include "index/ra_grid.h"
#include "io/env.h"

namespace maxrs {
namespace {

/// A scaled-down NE-like city dataset shared across the scenarios.
std::vector<SpatialObject> CityDataset() {
  ClusterOptions options;
  options.cardinality = 8000;
  options.domain_size = 100000.0;
  options.num_clusters = 12;
  options.cluster_sigma_fraction = 0.03;
  options.background_fraction = 0.15;
  options.seed = 2026;
  return MakeClustered(options);
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { city_ = new std::vector<SpatialObject>(CityDataset()); }
  static void TearDownTestSuite() {
    delete city_;
    city_ = nullptr;
  }

  static std::vector<SpatialObject>* city_;
};

std::vector<SpatialObject>* IntegrationTest::city_ = nullptr;

TEST_F(IntegrationTest, AllMaxRSAlgorithmsAgreeOnClusteredData) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, "city", *city_).ok());

  MaxRSOptions exact_options;
  exact_options.rect_width = 4000;
  exact_options.rect_height = 4000;
  exact_options.memory_bytes = 64 << 10;  // force external machinery
  auto exact = RunExactMaxRS(*env, "city", exact_options);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_GT(exact->total_weight, 0.0);
  EXPECT_GT(exact->stats.recursion_levels, 0u);

  BaselineOptions baseline_options;
  baseline_options.rect_width = 4000;
  baseline_options.rect_height = 4000;
  baseline_options.memory_bytes = 64 << 10;
  auto naive = RunNaivePlaneSweep(*env, "city", baseline_options);
  ASSERT_TRUE(naive.ok());
  auto asb = RunASBTreeSweep(*env, "city", baseline_options);
  ASSERT_TRUE(asb.ok());
  EXPECT_EQ(naive->total_weight, exact->total_weight);
  EXPECT_EQ(asb->total_weight, exact->total_weight);

  // In-memory agrees as well.
  const MaxRSResult mem = ExactMaxRSInMemory(*city_, 4000, 4000);
  EXPECT_EQ(mem.total_weight, exact->total_weight);

  // The reported location realizes the optimum.
  EXPECT_EQ(CoveredWeight(*city_, Rect::Centered(exact->location, 4000, 4000)),
            exact->total_weight);
}

TEST_F(IntegrationTest, PosixEnvProducesIdenticalResults) {
  const std::string dir = ::testing::TempDir() + "/maxrs_integration";
  auto posix = NewPosixEnv(dir, 4096);
  auto mem = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*posix, "city", *city_).ok());
  ASSERT_TRUE(WriteDataset(*mem, "city", *city_).ok());

  MaxRSOptions options;
  options.rect_width = 3000;
  options.rect_height = 3000;
  options.memory_bytes = 64 << 10;
  auto on_posix = RunExactMaxRS(*posix, "city", options);
  auto on_mem = RunExactMaxRS(*mem, "city", options);
  ASSERT_TRUE(on_posix.ok()) << on_posix.status().ToString();
  ASSERT_TRUE(on_mem.ok());
  EXPECT_EQ(on_posix->total_weight, on_mem->total_weight);
  EXPECT_EQ(on_posix->location.x, on_mem->location.x);
  EXPECT_EQ(on_posix->location.y, on_mem->location.y);
  // Identical I/O counts: the simulator and the real filesystem execute the
  // same block schedule.
  EXPECT_EQ(on_posix->stats.io.total(), on_mem->stats.io.total());
}

TEST_F(IntegrationTest, CircularPipelineOnClusteredData) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, "city", *city_).ok());
  MaxCRSOptions options;
  options.diameter = 5000;
  options.memory_bytes = 128 << 10;
  auto approx = RunApproxMaxCRS(*env, "city", options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();

  const ExactMaxCRSResult opt = ExactMaxCRS(*city_, 5000);
  ASSERT_GT(opt.total_weight, 0.0);
  EXPECT_GE(approx->total_weight, 0.25 * opt.total_weight);
  EXPECT_LE(approx->total_weight, opt.total_weight);
  // Quality on clustered data should in practice be far better than 1/4.
  EXPECT_GE(approx->total_weight, 0.5 * opt.total_weight);
}

TEST_F(IntegrationTest, ExtensionsAreMutuallyConsistent) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, "city", *city_).ok());
  MaxRSOptions options;
  options.rect_width = 4000;
  options.rect_height = 4000;
  options.memory_bytes = 64 << 10;

  auto exact = RunExactMaxRS(*env, "city", options);
  ASSERT_TRUE(exact.ok());

  auto top3 = RunTopKMaxRS(*env, "city", options, 3);
  ASSERT_TRUE(top3.ok());
  ASSERT_EQ(top3->size(), 3u);
  EXPECT_EQ((*top3)[0].total_weight, exact->total_weight);
  EXPECT_GE((*top3)[1].total_weight, (*top3)[2].total_weight);

  auto greedy = RunGreedyKMaxRS(*env, "city", options, 3);
  ASSERT_TRUE(greedy.ok());
  ASSERT_EQ(greedy->size(), 3u);
  EXPECT_EQ((*greedy)[0].total_weight, exact->total_weight);
  // Greedy round 2 can never beat the unconstrained second stratum... but it
  // can never beat round 1 either.
  EXPECT_LE((*greedy)[1].total_weight, (*greedy)[0].total_weight);

  auto min_rs = RunMinRS(*env, "city", options);
  ASSERT_TRUE(min_rs.ok());
  EXPECT_LE(min_rs->total_weight, exact->total_weight);
  EXPECT_GE(min_rs->total_weight, 0.0);
}

TEST_F(IntegrationTest, RaGridIsBoundedByExact) {
  auto env = NewMemEnv(4096);
  auto tree = AggRTree::BulkLoad(*env, "tree", *city_);
  ASSERT_TRUE(tree.ok());
  BufferPool pool(*env, 256 << 10);
  const MaxRSResult exact = ExactMaxRSInMemory(*city_, 4000, 4000);
  auto grid = RaGridMaxRS(*tree, pool, Rect{0, 100000, 0, 100000}, 4000, 4000,
                          64);
  ASSERT_TRUE(grid.ok());
  EXPECT_LE(grid->total_weight, exact.total_weight);
  EXPECT_GE(grid->total_weight, 0.5 * exact.total_weight)
      << "64x64 grid should find a decent candidate on clustered data";
}

TEST_F(IntegrationTest, CsvRoundTripThroughSolver) {
  // The maxrs_cli flow as a library sequence: CSV -> dataset -> solve.
  const std::string path = ::testing::TempDir() + "/maxrs_city.csv";
  ASSERT_TRUE(SaveCsv(path, *city_).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), city_->size());
  const MaxRSResult from_csv = ExactMaxRSInMemory(*loaded, 4000, 4000);
  const MaxRSResult direct = ExactMaxRSInMemory(*city_, 4000, 4000);
  EXPECT_EQ(from_csv.total_weight, direct.total_weight);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, RepeatedRunsLeaveEnvClean) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, "city", *city_).ok());
  MaxRSOptions options;
  options.rect_width = 2000;
  options.rect_height = 2000;
  options.memory_bytes = 64 << 10;
  for (int round = 0; round < 3; ++round) {
    auto result = RunExactMaxRS(*env, "city", options);
    ASSERT_TRUE(result.ok());
  }
  // Only the dataset remains.
  EXPECT_EQ(env->ListFiles().size(), 1u);
}

TEST_F(IntegrationTest, BufferBudgetChangesIoNotAnswers) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, "city", *city_).ok());
  double weight = -1;
  uint64_t io_small = 0, io_large = 0;
  for (size_t memory : {32u << 10, 512u << 10}) {
    MaxRSOptions options;
    options.rect_width = 4000;
    options.rect_height = 4000;
    options.memory_bytes = memory;
    auto result = RunExactMaxRS(*env, "city", options);
    ASSERT_TRUE(result.ok());
    if (weight < 0) {
      weight = result->total_weight;
    } else {
      EXPECT_EQ(result->total_weight, weight);
    }
    (memory == (32u << 10) ? io_small : io_large) = result->stats.io.total();
  }
  EXPECT_LT(io_large, io_small);  // more memory, fewer transfers
}

}  // namespace
}  // namespace maxrs
