// Contract tests of the async read-ahead layer (io/prefetch_reader.h):
// identical content and identical IoStats block accounting vs the
// synchronous RecordReader (never double- or under-counted), errors from
// in-flight prefetches surfaced at the next Read, short files and
// FaultEnv-injected failures handled without crashing a background worker.
#include "io/prefetch_reader.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "io/external_sort.h"
#include "io/fault_env.h"
#include "io/record_io.h"

namespace maxrs {
namespace {

struct Rec {
  uint64_t a;
  uint64_t b;
};
inline bool operator==(const Rec& x, const Rec& y) {
  return x.a == y.a && x.b == y.b;
}

std::vector<Rec> MakeRecords(uint64_t n) {
  std::vector<Rec> records;
  records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) records.push_back({i, i * 31});
  return records;
}

// 512-byte blocks, 16-byte records: 32 records per data block.
constexpr size_t kBlockSize = 512;

uint64_t ReadsOfFullScan(Env& env, const std::string& name, bool read_ahead,
                         std::vector<Rec>* out) {
  const IoStatsSnapshot before = env.stats().Snapshot();
  auto reader_or = PrefetchingReader<Rec>::Make(env, name, read_ahead);
  EXPECT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  Rec r{};
  out->clear();
  while (reader_or->Next(&r)) out->push_back(r);
  EXPECT_TRUE(reader_or->final_status().ok())
      << reader_or->final_status().ToString();
  return (env.stats().Snapshot() - before).blocks_read;
}

TEST(PrefetchingReaderTest, MatchesSynchronousReaderContentAndBlockCounts) {
  // Cardinalities that exercise every block shape: empty, single record,
  // exactly one block, one block + 1, an exact multi-block boundary, and a
  // partial tail block.
  for (uint64_t n : {0ull, 1ull, 32ull, 33ull, 320ull, 1000ull}) {
    auto env = NewMemEnv(kBlockSize);
    const std::vector<Rec> records = MakeRecords(n);
    ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());

    // Synchronous oracle: RecordReader.
    uint64_t sync_reads = 0;
    std::vector<Rec> sync_records;
    {
      const IoStatsSnapshot before = env->stats().Snapshot();
      auto reader_or = RecordReader<Rec>::Make(*env, "f");
      ASSERT_TRUE(reader_or.ok());
      Rec r{};
      while (reader_or->Next(&r)) sync_records.push_back(r);
      ASSERT_TRUE(reader_or->final_status().ok());
      sync_reads = (env->stats().Snapshot() - before).blocks_read;
    }
    EXPECT_EQ(sync_records, records) << n;

    for (bool read_ahead : {false, true}) {
      std::vector<Rec> got;
      const uint64_t reads = ReadsOfFullScan(*env, "f", read_ahead, &got);
      EXPECT_EQ(got, records) << n << " read_ahead=" << read_ahead;
      // The accounting contract: not one block more (no speculative fetch
      // past the end, no double count of a prefetched block) and not one
      // block less (serving from the prefetch buffer is not free I/O).
      EXPECT_EQ(reads, sync_reads) << n << " read_ahead=" << read_ahead;
    }
  }
}

TEST(PrefetchingReaderTest, HeaderOnlyProbeCostsOneBlock) {
  auto env = NewMemEnv(kBlockSize);
  ASSERT_TRUE(WriteRecordFile(*env, "f", MakeRecords(1000)).ok());
  const IoStatsSnapshot before = env->stats().Snapshot();
  auto reader_or = PrefetchingReader<Rec>::Make(*env, "f", /*read_ahead=*/true);
  ASSERT_TRUE(reader_or.ok());
  EXPECT_EQ(reader_or->total(), 1000u);
  // The first data-block fetch is issued lazily by the first Read, so a
  // probe that only wants the header pays exactly the header block — the
  // same bill as the synchronous reader.
  EXPECT_EQ((env->stats().Snapshot() - before).blocks_read, 1u);
}

TEST(PrefetchingReaderTest, AbandonedReaderCountsInflightBlockOnce) {
  auto env = NewMemEnv(kBlockSize);
  ASSERT_TRUE(WriteRecordFile(*env, "f", MakeRecords(1000)).ok());
  const IoStatsSnapshot before = env->stats().Snapshot();
  {
    auto reader_or =
        PrefetchingReader<Rec>::Make(*env, "f", /*read_ahead=*/true);
    ASSERT_TRUE(reader_or.ok());
    Rec r{};
    ASSERT_TRUE(reader_or->Next(&r));  // adopts block 1, prefetches block 2
    // Destructor joins the in-flight fetch; the worker's read must have
    // been counted exactly once even though nobody consumes it.
  }
  EXPECT_EQ((env->stats().Snapshot() - before).blocks_read, 3u)
      << "header + block 1 + the joined (unused) prefetch of block 2";
}

TEST(PrefetchingReaderTest, SurfacesInFlightFaultAtNextRead) {
  auto base = NewMemEnv(kBlockSize);
  ASSERT_TRUE(WriteRecordFile(*base, "f", MakeRecords(1000)).ok());
  FaultEnv env(*base);
  auto reader_or = PrefetchingReader<Rec>::Make(env, "f", /*read_ahead=*/true);
  ASSERT_TRUE(reader_or.ok());
  env.ArmAfter(3);  // lands on a background-prefetched data block
  Rec r{};
  uint64_t delivered = 0;
  while (reader_or->Next(&r)) ++delivered;
  EXPECT_EQ(reader_or->final_status().code(), Status::Code::kIOError)
      << "after " << delivered << " records: "
      << reader_or->final_status().ToString();
  EXPECT_LT(delivered, 1000u);
  EXPECT_EQ(env.faults_delivered(), 1u);
}

TEST(PrefetchingReaderTest, RetriesFailedBlockLikeSynchronousReader) {
  auto base = NewMemEnv(kBlockSize);
  ASSERT_TRUE(WriteRecordFile(*base, "f", MakeRecords(100)).ok());
  FaultEnv env(*base);
  auto reader_or = PrefetchingReader<Rec>::Make(env, "f", /*read_ahead=*/true);
  ASSERT_TRUE(reader_or.ok());
  env.ArmAfter(2);
  Rec r{};
  std::vector<Rec> got;
  Status st;
  while ((st = reader_or->Read(&r)).ok()) got.push_back(r);
  ASSERT_EQ(st.code(), Status::Code::kIOError);
  // The fault disarmed itself; Read retries the same block (next_block_
  // only advances on success) and the stream completes with nothing
  // skipped — the RecordReader recovery semantics.
  while ((st = reader_or->Read(&r)).ok()) got.push_back(r);
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_EQ(got, MakeRecords(100));
}

TEST(PrefetchingReaderTest, TruncatedFileFailsCleanlyAtOpen) {
  // A header promising more blocks than the file holds — the on-disk
  // shape of a torn copy — is caught by the checksummed framing at open,
  // before any worker is spawned or any data block fetched.
  auto env = NewMemEnv(kBlockSize);
  ASSERT_TRUE(WriteRecordFile(*env, "f", MakeRecords(320)).ok());
  {
    auto file_or = env->Open("f");
    ASSERT_TRUE(file_or.ok());
    ASSERT_TRUE((*file_or)->Truncate(4).ok());
  }
  for (bool read_ahead : {false, true}) {
    auto reader_or = PrefetchingReader<Rec>::Make(*env, "f", read_ahead);
    ASSERT_FALSE(reader_or.ok()) << "read_ahead=" << read_ahead;
    EXPECT_EQ(reader_or.status().code(), Status::Code::kCorruption)
        << "read_ahead=" << read_ahead;
    EXPECT_NE(reader_or.status().message().find("truncated"),
              std::string::npos);
  }
}

TEST(PrefetchingReaderTest, ShortFileSurfacesErrorNotCrash) {
  // Blocks that vanish *after* open (truncated through a second handle to
  // the same backing file) hit the reader mid-stream: the failed — or
  // in-flight prefetched — fetch parks its error and the scan ends with a
  // clean status after exactly the records that still existed.
  for (bool read_ahead : {false, true}) {
    auto env = NewMemEnv(kBlockSize);
    ASSERT_TRUE(WriteRecordFile(*env, "f", MakeRecords(320)).ok());
    auto reader_or = PrefetchingReader<Rec>::Make(*env, "f", read_ahead);
    ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
    {
      auto file_or = env->Open("f");
      ASSERT_TRUE(file_or.ok());
      ASSERT_TRUE((*file_or)->Truncate(4).ok());
    }
    Rec r{};
    uint64_t delivered = 0;
    while (reader_or->Next(&r)) ++delivered;
    EXPECT_EQ(reader_or->final_status().code(), Status::Code::kIOError)
        << "read_ahead=" << read_ahead << ": "
        << reader_or->final_status().ToString();
    EXPECT_EQ(delivered, 3u * 32u) << "read_ahead=" << read_ahead;
  }
}

TEST(PrefetchingReaderTest, MergeRunsReadAheadIsByteAndCountIdentical) {
  auto env = NewMemEnv(kBlockSize);
  auto less = [](const Rec& x, const Rec& y) { return x.a < y.a; };
  std::vector<std::string> runs;
  for (uint64_t k = 0; k < 5; ++k) {
    std::vector<Rec> run;
    for (uint64_t i = 0; i < 200 + 37 * k; ++i) run.push_back({i * 5 + k, i});
    runs.push_back("run" + std::to_string(k));
    ASSERT_TRUE(WriteRecordFile(*env, runs.back(), run).ok());
  }

  IoStatsSnapshot before = env->stats().Snapshot();
  ASSERT_TRUE(
      MergeRuns<Rec>(*env, runs, "out_sync", less, /*read_ahead=*/false).ok());
  const IoStatsSnapshot sync_io = env->stats().Snapshot() - before;

  before = env->stats().Snapshot();
  ASSERT_TRUE(
      MergeRuns<Rec>(*env, runs, "out_ra", less, /*read_ahead=*/true).ok());
  const IoStatsSnapshot ra_io = env->stats().Snapshot() - before;

  EXPECT_EQ(ra_io.blocks_read, sync_io.blocks_read);
  EXPECT_EQ(ra_io.blocks_written, sync_io.blocks_written);
  auto sync_or = ReadRecordFile<Rec>(*env, "out_sync");
  auto ra_or = ReadRecordFile<Rec>(*env, "out_ra");
  ASSERT_TRUE(sync_or.ok() && ra_or.ok());
  EXPECT_EQ(*sync_or, *ra_or);
}

TEST(PrefetchingReaderTest, ConcurrentReadersShareTheDefaultExecutor) {
  // Many streams double-buffering through the shared IoExecutor at once:
  // the serve layer's shape. Every stream must deliver its own file intact.
  auto env = NewMemEnv(kBlockSize);
  constexpr size_t kStreams = 8;
  for (size_t s = 0; s < kStreams; ++s) {
    std::vector<Rec> records;
    for (uint64_t i = 0; i < 500; ++i) records.push_back({s * 10000 + i, i});
    ASSERT_TRUE(
        WriteRecordFile(*env, "f" + std::to_string(s), records).ok());
  }
  std::vector<std::thread> threads;
  std::vector<int> ok(kStreams, 0);  // int, not bool: vector<bool> bit-packs
  for (size_t s = 0; s < kStreams; ++s) {
    threads.emplace_back([&, s] {
      auto reader_or = PrefetchingReader<Rec>::Make(
          *env, "f" + std::to_string(s), /*read_ahead=*/true);
      if (!reader_or.ok()) return;
      Rec r{};
      uint64_t i = 0;
      bool good = true;
      while (reader_or->Next(&r)) {
        good = good && r.a == s * 10000 + i && r.b == i;
        ++i;
      }
      ok[s] = good && i == 500 && reader_or->final_status().ok();
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t s = 0; s < kStreams; ++s) EXPECT_TRUE(ok[s]) << "stream " << s;
}

TEST(IoExecutorTest, DrainsEveryTaskBeforeJoin) {
  std::atomic<int> ran{0};
  {
    IoExecutor executor(2);
    for (int i = 0; i < 100; ++i) {
      executor.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor: drain + join
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace maxrs
