#include "core/plane_sweep.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/exact_maxrs.h"
#include "geom/geometry.h"
#include "test_util.h"

namespace maxrs {
namespace {

TEST(PlaneSweepTest, EmptyInput) {
  EXPECT_TRUE(PlaneSweep({}, Interval{-kInf, kInf}).empty());
}

TEST(PlaneSweepTest, SingleRectangle) {
  std::vector<PieceRecord> pieces = {{0, 10, 0, 5, 2.0}};
  auto tuples = PlaneSweep(pieces, Interval{-kInf, kInf});
  // Two h-lines: bottom (opens, sum 2) and top (closes, sum 0).
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].y, 0);
  EXPECT_EQ(tuples[0].x_lo, 0);
  EXPECT_EQ(tuples[0].x_hi, 10);
  EXPECT_EQ(tuples[0].sum, 2.0);
  EXPECT_EQ(tuples[1].y, 5);
  EXPECT_EQ(tuples[1].sum, 0.0);
}

TEST(PlaneSweepTest, TwoOverlappingRectangles) {
  std::vector<PieceRecord> pieces = {{0, 10, 0, 10, 1.0}, {5, 15, 5, 15, 1.0}};
  auto tuples = PlaneSweep(pieces, Interval{-kInf, kInf});
  // h-lines at y = 0, 5, 10, 15.
  ASSERT_EQ(tuples.size(), 4u);
  // Stratum [5,10): both rectangles active; intersection is [5,10).
  EXPECT_EQ(tuples[1].y, 5);
  EXPECT_EQ(tuples[1].sum, 2.0);
  EXPECT_EQ(tuples[1].x_lo, 5);
  EXPECT_EQ(tuples[1].x_hi, 10);
  // Stratum [10,15): only the second remains.
  EXPECT_EQ(tuples[2].sum, 1.0);
}

TEST(PlaneSweepTest, TuplesSortedStrictlyIncreasingY) {
  auto objects = testing::RandomIntObjects(200, 100, 11);
  std::vector<PieceRecord> pieces;
  for (const auto& o : objects) {
    pieces.push_back({o.x - 5, o.x + 5, o.y - 5, o.y + 5, o.w});
  }
  auto tuples = PlaneSweep(pieces, Interval{-kInf, kInf});
  for (size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_LT(tuples[i - 1].y, tuples[i].y);
  }
  // One tuple per distinct event y, at most 2 per piece.
  EXPECT_LE(tuples.size(), 2 * pieces.size());
  // The sweep ends with everything closed.
  EXPECT_EQ(tuples.back().sum, 0.0);
}

TEST(PlaneSweepTest, RespectsSlabBounds) {
  std::vector<PieceRecord> pieces = {{2, 8, 0, 4, 1.0}};
  auto tuples = PlaneSweep(pieces, Interval{0, 10});
  ASSERT_EQ(tuples.size(), 2u);
  // All zero-sum intervals stay within the slab.
  EXPECT_GE(tuples[1].x_lo, 0.0);
  EXPECT_LE(tuples[1].x_hi, 10.0);
}

TEST(PlaneSweepTest, PaperFigure2Example) {
  // Four unit-weight objects as in Fig. 2; rectangle 4 x 3 centered at each.
  // Objects chosen so three rectangles share a region.
  std::vector<SpatialObject> objects = {
      {2, 2, 1}, {4, 3, 1}, {3, 4, 1}, {9, 9, 1}};
  MaxRSResult result = ExactMaxRSInMemory(objects, 4, 3);
  // The first three objects pairwise fit in a 4 x 3 window.
  EXPECT_EQ(result.total_weight, 3.0);
  // Verify the returned location actually covers that weight.
  const Rect r = Rect::Centered(result.location, 4, 3);
  EXPECT_EQ(CoveredWeight(objects, r), 3.0);
}

// --- Oracle comparison sweeps -------------------------------------------

struct OracleCase {
  size_t n;
  uint64_t extent;
  double rect_w;
  double rect_h;
  bool random_weights;
};

class PlaneSweepOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(PlaneSweepOracleTest, MatchesBruteForce) {
  const OracleCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto objects =
        testing::RandomIntObjects(c.n, c.extent, seed, c.random_weights);
    const MaxRSResult got = ExactMaxRSInMemory(objects, c.rect_w, c.rect_h);
    const BruteForceResult want = BruteForceMaxRS(objects, c.rect_w, c.rect_h);
    ASSERT_EQ(got.total_weight, want.total_weight)
        << "n=" << c.n << " extent=" << c.extent << " seed=" << seed;
    // The returned location must realize the reported weight.
    const Rect r = Rect::Centered(got.location, c.rect_w, c.rect_h);
    ASSERT_EQ(CoveredWeight(objects, r), got.total_weight)
        << "location not optimal, seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PlaneSweepOracleTest,
    ::testing::Values(OracleCase{1, 10, 2, 2, false},
                      OracleCase{10, 20, 4, 4, false},
                      OracleCase{50, 40, 8, 6, false},
                      OracleCase{100, 60, 10, 10, false},
                      OracleCase{100, 30, 10, 10, false},  // dense overlaps
                      OracleCase{150, 1000, 100, 50, false},
                      OracleCase{80, 50, 7, 13, true},     // weighted
                      OracleCase{120, 25, 6, 6, true},     // heavy duplicates
                      OracleCase{60, 8, 3, 3, true}));     // tiny domain

TEST(PlaneSweepEdgeTest, AllObjectsAtSamePoint) {
  std::vector<SpatialObject> objects(20, SpatialObject{5, 5, 1});
  MaxRSResult result = ExactMaxRSInMemory(objects, 2, 2);
  EXPECT_EQ(result.total_weight, 20.0);
  const Rect r = Rect::Centered(result.location, 2, 2);
  EXPECT_EQ(CoveredWeight(objects, r), 20.0);
}

TEST(PlaneSweepEdgeTest, ObjectsOnAVerticalLine) {
  std::vector<SpatialObject> objects;
  for (int i = 0; i < 30; ++i) objects.push_back({7, static_cast<double>(i), 1});
  MaxRSResult result = ExactMaxRSInMemory(objects, 3, 10);
  EXPECT_EQ(result.total_weight, 10.0);
}

TEST(PlaneSweepEdgeTest, ZeroWeightObjectsDoNotCount) {
  std::vector<SpatialObject> objects = {{0, 0, 0}, {1, 1, 0}, {50, 50, 1}};
  MaxRSResult result = ExactMaxRSInMemory(objects, 4, 4);
  EXPECT_EQ(result.total_weight, 1.0);
}

TEST(PlaneSweepEdgeTest, RectLargerThanDomainCoversEverything) {
  auto objects = testing::RandomIntObjects(50, 10, 3);
  MaxRSResult result = ExactMaxRSInMemory(objects, 1000, 1000);
  double total = 0;
  for (const auto& o : objects) total += o.w;
  EXPECT_EQ(result.total_weight, total);
}

}  // namespace
}  // namespace maxrs
