// Contract tests of the record-stream seam (io/record_stream.h): channel
// hand-off semantics (consumer blocks until data or close, producer never
// blocks), producer-error propagation in place of end-of-stream, safe
// destruction with undrained in-flight records, the empty stream, the
// deterministic spill policy (threshold crossing mid-stream, cap=0 and
// cap=SIZE_MAX extremes), spill-then-resume content equality, and the
// byte-identity of MergingSource against the materialized merge oracle.
#include "io/record_stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "io/external_sort.h"
#include "io/record_io.h"

namespace maxrs {
namespace {

struct Rec {
  uint64_t a;
  uint64_t b;
};
inline bool operator==(const Rec& x, const Rec& y) {
  return x.a == y.a && x.b == y.b;
}

std::vector<Rec> MakeRecords(uint64_t n) {
  std::vector<Rec> records;
  records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) records.push_back({i, i * 31});
  return records;
}

// 512-byte blocks, 16-byte records: 32 records per segment and per block.
constexpr size_t kBlockSize = 512;
constexpr size_t kNoCap = std::numeric_limits<size_t>::max();

std::vector<Rec> DrainAll(RecordSource<Rec>& source, Status* final_status) {
  std::vector<Rec> out;
  Rec r{};
  while (source.Next(&r)) out.push_back(r);
  *final_status = source.final_status();
  return out;
}

TEST(RecordChannelTest, BoundedMemoryHandsOffToBlockedConsumer) {
  auto env = NewMemEnv(kBlockSize);
  RecordChannel<Rec> channel(*env, "spill", /*memory_cap_bytes=*/kNoCap);
  const std::vector<Rec> records = MakeRecords(500);

  // Consumer first: it must park until segments arrive, then deliver the
  // exact sequence and stop at the close.
  std::vector<Rec> got;
  Status consumer_status;
  std::thread consumer(
      [&] { got = DrainAll(channel, &consumer_status); });

  for (const Rec& r : records) ASSERT_TRUE(channel.Append(r).ok());
  ASSERT_TRUE(channel.Close(Status::OK()).ok());
  consumer.join();

  EXPECT_TRUE(consumer_status.ok()) << consumer_status.ToString();
  EXPECT_EQ(got, records);
  EXPECT_FALSE(channel.spilled());
  // Never-spilled channels never touch the Env.
  EXPECT_EQ(env->stats().Snapshot().total(), 0u);
}

TEST(RecordChannelTest, ProducerErrorSurfacesAtConsumerAfterBufferedData) {
  auto env = NewMemEnv(kBlockSize);
  RecordChannel<Rec> channel(*env, "spill", kNoCap);
  // Two full segments enqueued before the failure: the consumer must see
  // all of them, *then* the error in place of end-of-stream.
  const std::vector<Rec> records = MakeRecords(64);
  for (const Rec& r : records) ASSERT_TRUE(channel.Append(r).ok());
  const Status boom = Status::IOError("producer exploded");
  EXPECT_EQ(channel.Close(boom).code(), Status::Code::kIOError);
  // Close is idempotent and the first status wins.
  EXPECT_EQ(channel.Close(Status::OK()).code(), Status::Code::kIOError);

  Status consumer_status;
  const std::vector<Rec> got = DrainAll(channel, &consumer_status);
  EXPECT_EQ(got, records);
  EXPECT_EQ(consumer_status.code(), Status::Code::kIOError);
  EXPECT_EQ(consumer_status.message(), boom.message());
}

TEST(RecordChannelTest, DestructorWithInFlightRecordsLeaksNothing) {
  auto env = NewMemEnv(kBlockSize);
  {
    // Undrained in-memory segments, a partial fill, and a created spill
    // file — destroying the channel must drop all of it and delete the
    // spill from the Env.
    RecordChannel<Rec> channel(*env, "spill", /*memory_cap_bytes=*/kBlockSize);
    for (const Rec& r : MakeRecords(300)) ASSERT_TRUE(channel.Append(r).ok());
    ASSERT_TRUE(channel.Close(Status::OK()).ok());
    ASSERT_TRUE(channel.spilled());
    ASSERT_TRUE(env->Exists("spill"));
  }
  EXPECT_FALSE(env->Exists("spill"));

  {
    // And the harsher variant: not even closed.
    RecordChannel<Rec> channel(*env, "spill2", /*memory_cap_bytes=*/0);
    for (const Rec& r : MakeRecords(100)) ASSERT_TRUE(channel.Append(r).ok());
  }
  EXPECT_FALSE(env->Exists("spill2"));
}

TEST(RecordChannelTest, EmptyStreamDeliversCleanEndOfStream) {
  auto env = NewMemEnv(kBlockSize);
  for (size_t cap : {size_t{0}, kNoCap}) {
    RecordChannel<Rec> channel(*env, "spill", cap);
    ASSERT_TRUE(channel.Close(Status::OK()).ok());
    Status final_status;
    EXPECT_TRUE(DrainAll(channel, &final_status).empty());
    EXPECT_TRUE(final_status.ok()) << final_status.ToString();
    // Closing an empty stream never creates a spill file, even at cap=0.
    EXPECT_FALSE(channel.spilled());
    EXPECT_FALSE(env->Exists("spill"));
  }
}

TEST(RecordChannelTest, SpillThresholdCrossingMidStreamIsDeterministic) {
  // Cap of 4 segments: segments 0-3 stay in memory, segment 4 crosses the
  // cap and from that record on EVERYTHING goes to the spill file — a pure
  // function of the bytes produced, independent of consumer progress.
  auto env = NewMemEnv(kBlockSize);
  RecordChannel<Rec> channel(*env, "spill", /*memory_cap_bytes=*/4 * kBlockSize);
  const std::vector<Rec> records = MakeRecords(1000);
  for (const Rec& r : records) ASSERT_TRUE(channel.Append(r).ok());
  ASSERT_TRUE(channel.Close(Status::OK()).ok());
  ASSERT_TRUE(channel.spilled());

  // The spill file holds exactly the records past the in-memory prefix.
  auto spilled_or = ReadRecordFile<Rec>(*env, "spill");
  ASSERT_TRUE(spilled_or.ok());
  EXPECT_EQ(spilled_or->size(), 1000u - 4 * 32);
  EXPECT_EQ(spilled_or->front(), records[4 * 32]);

  Status final_status;
  EXPECT_EQ(DrainAll(channel, &final_status), records);
  EXPECT_TRUE(final_status.ok()) << final_status.ToString();
}

TEST(RecordChannelTest, SpillThenResumeContentEqualityAtEveryCap) {
  // The same stream through every spill level — never (cap=inf), mid-stream
  // crossing at several thresholds, always (cap=0) — must deliver identical
  // content; only the Env traffic differs, and monotonically.
  const std::vector<Rec> records = MakeRecords(777);
  uint64_t previous_io = 0;
  bool first = true;
  for (size_t cap : {kNoCap, size_t{8 * kBlockSize}, size_t{kBlockSize},
                     size_t{7}, size_t{0}}) {
    auto env = NewMemEnv(kBlockSize);
    RecordChannel<Rec> channel(*env, "spill", cap);
    for (const Rec& r : records) ASSERT_TRUE(channel.Append(r).ok());
    ASSERT_TRUE(channel.Close(Status::OK()).ok());
    Status final_status;
    EXPECT_EQ(DrainAll(channel, &final_status), records) << "cap=" << cap;
    EXPECT_TRUE(final_status.ok()) << final_status.ToString();
    const uint64_t io = env->stats().Snapshot().total();
    if (!first) {
      EXPECT_GE(io, previous_io) << "smaller cap must not do less I/O";
    }
    previous_io = io;
    first = false;
  }
}

TEST(RecordChannelTest, ConsumerAheadOfProducerSeesEverySegment) {
  // Interleaved hand-off under real concurrency: the consumer races the
  // producer segment by segment across the spill threshold. TSan-sensitive.
  auto env = NewMemEnv(kBlockSize);
  RecordChannel<Rec> channel(*env, "spill", /*memory_cap_bytes=*/2 * kBlockSize);
  const std::vector<Rec> records = MakeRecords(2000);
  std::vector<Rec> got;
  Status consumer_status;
  std::thread consumer([&] { got = DrainAll(channel, &consumer_status); });
  for (const Rec& r : records) ASSERT_TRUE(channel.Append(r).ok());
  ASSERT_TRUE(channel.Close(Status::OK()).ok());
  consumer.join();
  EXPECT_TRUE(consumer_status.ok()) << consumer_status.ToString();
  EXPECT_EQ(got, records);
}

TEST(FileRecordStreamTest, SinkThenSourceRoundTripsThroughTheEnv) {
  auto env = NewMemEnv(kBlockSize);
  const std::vector<Rec> records = MakeRecords(100);
  {
    auto sink_or = FileRecordSink<Rec>::Make(*env, "f");
    ASSERT_TRUE(sink_or.ok());
    for (const Rec& r : records) ASSERT_TRUE(sink_or->Append(r).ok());
    ASSERT_TRUE(sink_or->Close(Status::OK()).ok());
    EXPECT_EQ(sink_or->count(), 100u);
  }
  auto source_or = FileRecordSource<Rec>::Make(*env, "f");
  ASSERT_TRUE(source_or.ok());
  EXPECT_EQ(source_or->remaining(), 100u);
  Status final_status;
  EXPECT_EQ(DrainAll(*source_or, &final_status), records);
  EXPECT_TRUE(final_status.ok());
}

TEST(FileRecordStreamTest, SinkClosedWithErrorWritesNoValidFile) {
  auto env = NewMemEnv(kBlockSize);
  auto sink_or = FileRecordSink<Rec>::Make(*env, "f");
  ASSERT_TRUE(sink_or.ok());
  ASSERT_TRUE(sink_or->Append({1, 2}).ok());
  EXPECT_EQ(sink_or->Close(Status::IOError("upstream died")).code(),
            Status::Code::kIOError);
  // Never Finish()ed: the header still holds the zero-fill, so readers
  // see an empty (not a torn) stream rather than the partial data.
  auto readback_or = ReadRecordFile<Rec>(*env, "f");
  ASSERT_TRUE(readback_or.ok());
  EXPECT_TRUE(readback_or->empty());
}

TEST(MergingSourceTest, ByteIdenticalToMaterializedMergeOracle) {
  auto env = NewMemEnv(kBlockSize);
  auto less = [](const Rec& x, const Rec& y) { return x.a < y.a; };
  // Overlapping runs with cross-run ties (equal keys, equal payloads under
  // a total order) plus one empty run.
  std::vector<std::string> runs;
  std::vector<std::vector<Rec>> run_data;
  for (uint64_t k = 0; k < 4; ++k) {
    std::vector<Rec> run;
    for (uint64_t i = 0; i < 150 + 11 * k; ++i) {
      run.push_back({(i * 3 + k) / 2, ((i * 3 + k) / 2) * 31});
    }
    runs.push_back("run" + std::to_string(k));
    ASSERT_TRUE(WriteRecordFile(*env, runs.back(), run).ok());
    run_data.push_back(std::move(run));
  }
  runs.push_back("empty");
  run_data.push_back({});
  ASSERT_TRUE(WriteRecordFile(*env, "empty", std::vector<Rec>{}).ok());

  ASSERT_TRUE(MergeRuns<Rec>(*env, runs, "oracle", less, false).ok());
  auto oracle_or = ReadRecordFile<Rec>(*env, "oracle");
  ASSERT_TRUE(oracle_or.ok());

  // The same runs through channels (so the merge is over live streams, not
  // files), at a cap that spills some channels mid-stream.
  std::vector<std::unique_ptr<RecordChannel<Rec>>> channels;
  std::vector<RecordSource<Rec>*> sources;
  for (size_t k = 0; k < runs.size(); ++k) {
    channels.push_back(std::make_unique<RecordChannel<Rec>>(
        *env, "ch_spill" + std::to_string(k), 2 * kBlockSize));
    sources.push_back(channels.back().get());
    for (const Rec& r : run_data[k]) ASSERT_TRUE(channels[k]->Append(r).ok());
    ASSERT_TRUE(channels[k]->Close(Status::OK()).ok());
  }
  MergingSource<Rec, decltype(less)> merged(std::move(sources), less);
  Status final_status;
  EXPECT_EQ(DrainAll(merged, &final_status), *oracle_or);
  EXPECT_TRUE(final_status.ok()) << final_status.ToString();
}

TEST(MergingSourceTest, PrependedProbeDoesNotDisturbTheMerge) {
  auto env = NewMemEnv(kBlockSize);
  auto less = [](const Rec& x, const Rec& y) { return x.a < y.a; };
  RecordChannel<Rec> even(*env, "s0", kNoCap);
  RecordChannel<Rec> odd(*env, "s1", kNoCap);
  for (uint64_t i = 0; i < 100; i += 2) ASSERT_TRUE(even.Append({i, i}).ok());
  for (uint64_t i = 1; i < 100; i += 2) ASSERT_TRUE(odd.Append({i, i}).ok());
  ASSERT_TRUE(even.Close(Status::OK()).ok());
  ASSERT_TRUE(odd.Close(Status::OK()).ok());

  MergingSource<Rec, decltype(less)> merged({&even, &odd}, less);
  Rec first{};
  ASSERT_TRUE(merged.Read(&first).ok());
  EXPECT_EQ(first.a, 0u);
  PrependedSource<Rec> stream(first, &merged);
  Status final_status;
  const std::vector<Rec> got = DrainAll(stream, &final_status);
  ASSERT_TRUE(final_status.ok());
  ASSERT_EQ(got.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(got[i].a, i);
}

}  // namespace
}  // namespace maxrs
