#include "index/agg_rtree.h"

#include <gtest/gtest.h>

#include "core/exact_maxrs.h"
#include "index/ra_grid.h"
#include "io/env.h"
#include "test_util.h"

namespace maxrs {
namespace {

struct TreeCase {
  size_t n;
  uint64_t extent;
  bool weights;
};

class AggRTreeOracleTest : public ::testing::TestWithParam<TreeCase> {};

TEST_P(AggRTreeOracleTest, RangeSumMatchesLinearScan) {
  const TreeCase& c = GetParam();
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(c.n, c.extent, 3, c.weights);
  auto tree = AggRTree::BulkLoad(*env, "tree", objects);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  BufferPool pool(*env, 1 << 14);

  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const double x = static_cast<double>(rng.UniformU64(c.extent + 1));
    const double y = static_cast<double>(rng.UniformU64(c.extent + 1));
    const double w = 1.0 + static_cast<double>(rng.UniformU64(c.extent));
    const double h = 1.0 + static_cast<double>(rng.UniformU64(c.extent));
    const Rect query{x, x + w, y, y + h};
    auto got = tree->RangeSum(pool, query);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, CoveredWeight(objects, query)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, AggRTreeOracleTest,
                         ::testing::Values(TreeCase{1, 10, false},
                                           TreeCase{50, 100, false},
                                           TreeCase{500, 300, true},
                                           TreeCase{5000, 1000, false},
                                           TreeCase{5000, 50, true}));

TEST(AggRTreeTest, EmptyTree) {
  auto env = NewMemEnv(512);
  auto tree = AggRTree::BulkLoad(*env, "tree", {});
  ASSERT_TRUE(tree.ok());
  BufferPool pool(*env, 1 << 12);
  auto sum = tree->RangeSum(pool, Rect{0, 100, 0, 100});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 0.0);
  auto total = tree->TotalSum(pool);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 0.0);
}

TEST(AggRTreeTest, TotalSumEqualsRootAggregate) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(2000, 500, 5, /*weights=*/true);
  double want = 0;
  for (const auto& o : objects) want += o.w;
  auto tree = AggRTree::BulkLoad(*env, "tree", objects);
  ASSERT_TRUE(tree.ok());
  BufferPool pool(*env, 1 << 13);
  auto total = tree->TotalSum(pool);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, want, 1e-9);
  // A query covering everything agrees too.
  auto all = tree->RangeSum(pool, Rect{-1, 501, -1, 501});
  ASSERT_TRUE(all.ok());
  EXPECT_NEAR(*all, want, 1e-9);
}

TEST(AggRTreeTest, MultiLevelStructure) {
  auto env = NewMemEnv(512);  // leaf capacity (512-8)/24 = 21
  auto objects = testing::RandomIntObjects(5000, 2000, 7);
  auto tree = AggRTree::BulkLoad(*env, "tree", objects);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->height(), 2u);
  EXPECT_GT(tree->num_blocks(), 200u);
  EXPECT_EQ(tree->num_objects(), 5000u);
}

TEST(AggRTreeTest, AggregateEntriesShortCircuitLargeQueries) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(5000, 1000, 9);
  auto tree = AggRTree::BulkLoad(*env, "tree", objects);
  ASSERT_TRUE(tree.ok());
  BufferPool pool(*env, 1 << 14);
  RangeSumStats big_stats, small_stats;
  ASSERT_TRUE(tree->RangeSum(pool, Rect{-1, 1001, -1, 1001}, &big_stats).ok());
  ASSERT_TRUE(tree->RangeSum(pool, Rect{10, 30, 10, 30}, &small_stats).ok());
  // A query containing everything is answered near the root.
  EXPECT_LT(big_stats.nodes_visited, 5u);
  EXPECT_GT(big_stats.entries_aggregated, 0u);
  // A tiny query touches few leaves.
  EXPECT_LT(small_stats.objects_scanned, 200u);
}

TEST(AggRTreeTest, OpenRoundTrip) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1000, 300, 11, /*weights=*/true);
  {
    auto built = AggRTree::BulkLoad(*env, "tree", objects);
    ASSERT_TRUE(built.ok());
  }
  auto tree = AggRTree::Open(*env, "tree");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_objects(), 1000u);
  BufferPool pool(*env, 1 << 13);
  const Rect query{50, 150, 100, 280};
  auto got = tree->RangeSum(pool, query);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, CoveredWeight(objects, query));
}

TEST(AggRTreeTest, OpenRejectsForeignFiles) {
  auto env = NewMemEnv(512);
  auto file = env->Create("junk");
  ASSERT_TRUE(file.ok());
  std::vector<char> buf(512, 42);
  ASSERT_TRUE((*file)->WriteBlock(0, buf.data()).ok());
  EXPECT_EQ(AggRTree::Open(*env, "junk").status().code(),
            Status::Code::kCorruption);
}

// --- RA-grid MaxRS ----------------------------------------------------------

TEST(RaGridTest, NeverExceedsAndConvergesToOptimum) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(2000, 1000, 13);
  const double rect = 100;
  const MaxRSResult exact = ExactMaxRSInMemory(objects, rect, rect);

  auto tree = AggRTree::BulkLoad(*env, "tree", objects);
  ASSERT_TRUE(tree.ok());
  BufferPool pool(*env, 1 << 15);
  const Rect domain{0, 1000, 0, 1000};

  double prev_best = -1.0;
  for (uint32_t grid : {4u, 16u, 64u}) {
    auto got = RaGridMaxRS(*tree, pool, domain, rect, rect, grid);
    ASSERT_TRUE(got.ok());
    EXPECT_LE(got->total_weight, exact.total_weight);
    EXPECT_EQ(got->queries, static_cast<uint64_t>(grid) * grid);
    // The grid answer is realizable.
    EXPECT_EQ(CoveredWeight(objects, Rect::Centered(got->location, rect, rect)),
              got->total_weight);
    // Monotone improvement is not guaranteed point-wise, but coarse-to-fine
    // must not get dramatically worse; track it loosely.
    EXPECT_GE(got->total_weight, prev_best * 0.5);
    prev_best = got->total_weight;
  }
  // At fine resolution the grid should get close (within 25%) but typically
  // still below the exact optimum.
  auto fine = RaGridMaxRS(*tree, pool, domain, rect, rect, 128);
  ASSERT_TRUE(fine.ok());
  EXPECT_GE(fine->total_weight, 0.75 * exact.total_weight);
}

TEST(RaGridTest, RejectsBadArguments) {
  auto env = NewMemEnv(512);
  auto tree = AggRTree::BulkLoad(*env, "tree", {{1, 1, 1}});
  ASSERT_TRUE(tree.ok());
  BufferPool pool(*env, 1 << 12);
  EXPECT_FALSE(RaGridMaxRS(*tree, pool, Rect{0, 10, 0, 10}, 1, 1, 0).ok());
  EXPECT_FALSE(RaGridMaxRS(*tree, pool, Rect{10, 0, 0, 10}, 1, 1, 4).ok());
}

}  // namespace
}  // namespace maxrs
