// Failure-path coverage: every layer must propagate injected I/O errors as
// Status, never crash or silently succeed.
#include "io/fault_env.h"

#include <gtest/gtest.h>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "io/external_sort.h"
#include "io/record_io.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

struct Rec {
  uint64_t a;
};

TEST(FaultEnvTest, FailsExactlyTheArmedOperation) {
  auto base = NewMemEnv(512);
  FaultEnv env(*base);
  auto file_or = env.Create("f");
  ASSERT_TRUE(file_or.ok());
  std::vector<char> buf(512);
  env.ArmAfter(2);
  EXPECT_TRUE((*file_or)->WriteBlock(0, buf.data()).ok());      // op 1
  EXPECT_FALSE((*file_or)->WriteBlock(1, buf.data()).ok());     // op 2: fault
  EXPECT_TRUE((*file_or)->WriteBlock(1, buf.data()).ok());      // disarmed
  EXPECT_EQ(env.faults_delivered(), 1u);
}

TEST(FaultEnvTest, RecordWriterPropagatesWriteFault) {
  auto base = NewMemEnv(512);
  FaultEnv env(*base);
  auto writer_or = RecordWriter<Rec>::Make(env, "f");
  ASSERT_TRUE(writer_or.ok());
  env.ArmAfter(1);
  Status st = Status::OK();
  // 512/8 = 64 records per block: the 64th append triggers the block flush.
  for (uint64_t i = 0; i < 64 && st.ok(); ++i) st = writer_or->Append({i});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST(FaultEnvTest, RecordReaderPropagatesReadFault) {
  auto base = NewMemEnv(512);
  {
    std::vector<Rec> records(200);
    ASSERT_TRUE(WriteRecordFile(*base, "f", records).ok());
  }
  FaultEnv env(*base);
  auto reader_or = RecordReader<Rec>::Make(env, "f");
  ASSERT_TRUE(reader_or.ok());
  env.ArmAfter(2);  // header already read; fail the second data block
  Rec r;
  Status st = Status::OK();
  while (st.ok()) st = reader_or->Read(&r);
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST(FaultEnvTest, ExternalSortSurfacesFaults) {
  auto base = NewMemEnv(512);
  {
    std::vector<Rec> records;
    for (uint64_t i = 0; i < 5000; ++i) records.push_back({5000 - i});
    ASSERT_TRUE(WriteRecordFile(*base, "in", records).ok());
  }
  FaultEnv env(*base);
  // Try faults at several depths of the sort pipeline.
  for (uint64_t k : {1u, 10u, 50u, 200u}) {
    env.ArmAfter(k);
    Status st = ExternalSort<Rec>(
        env, "in", "out",
        [](const Rec& a, const Rec& b) { return a.a < b.a; },
        ExternalSortOptions{1 << 10});
    env.Disarm();
    EXPECT_FALSE(st.ok()) << "fault at op " << k << " was swallowed";
    EXPECT_EQ(st.code(), Status::Code::kIOError);
  }
}

class ExactMaxRSFaultTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactMaxRSFaultTest, SurfacesFaultsAtEveryStage) {
  auto base = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1000, 400, 3);
  ASSERT_TRUE(WriteDataset(*base, "data", objects).ok());
  FaultEnv env(*base);
  MaxRSOptions options;
  options.rect_width = 20;
  options.rect_height = 20;
  options.memory_bytes = 1 << 13;
  options.fanout = 3;
  options.base_case_max_pieces = 64;

  // Both block schedules (synchronous and double-buffered read-ahead, where
  // the fault may land on an in-flight background fetch) crossed with both
  // division modes (materialized part files and streaming channels at a
  // zero cap, where the fault lands on spill traffic). Every combination
  // must surface the fault as a Status at the caller, never crash a worker.
  for (bool streaming : {false, true}) {
    for (bool read_ahead : {false, true}) {
      options.streaming_division = streaming;
      options.stream_channel_bytes = 0;
      options.read_ahead = read_ahead;
      env.ArmAfter(GetParam());
      auto result = RunExactMaxRS(env, "data", options);
      env.Disarm();
      ASSERT_FALSE(result.ok())
          << "fault at op " << GetParam() << " swallowed (read_ahead="
          << read_ahead << ", streaming=" << streaming << ")";
      EXPECT_EQ(result.status().code(), Status::Code::kIOError)
          << "read_ahead=" << read_ahead << ", streaming=" << streaming;
    }
  }
}

// Operation indices chosen to land in: dataset read, transform writes, sort
// runs, merge passes, division routing, plane-sweep slab write, merge sweep.
INSTANTIATE_TEST_SUITE_P(Depths, ExactMaxRSFaultTest,
                         ::testing::Values(1, 3, 20, 100, 300, 700, 1200));

TEST(StreamingSpillFaultTest, SpillFaultSurfacesAtSubmitWithoutWedgingServer) {
  // Streaming serve with a zero channel cap: every routed record takes the
  // spill path, so armed faults land on spill writes (and spill read-backs)
  // mid-routing. Each fault must surface as kIOError from Submit — no hang,
  // and the server must stay serviceable afterwards (workers alive, scratch
  // released), which the follow-up healthy Submit proves.
  auto base = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1500, 500, 7);
  ASSERT_TRUE(WriteDataset(*base, "data", objects).ok());
  FaultEnv env(*base);
  DatasetHandleOptions ingest;
  ingest.shard_count = 5;
  ingest.memory_bytes = 1 << 13;
  auto handle = DatasetHandle::Ingest(env, "data", ingest);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  for (bool write_behind : {false, true}) {
    MaxRSServerOptions options;
    options.memory_bytes = 1 << 13;
    options.num_workers = 2;
    options.cache_entries = 0;
    options.routing_mode = ServeRoutingMode::kStreaming;
    options.stream_channel_bytes = 0;
    options.write_behind = write_behind;
    MaxRSServer server(env, *handle, options);

    // Healthy run first: pins the answer and proves the sweep's failures
    // below are injected, not latent.
    auto want = server.Submit(24, 24);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    for (uint64_t k : {3u, 15u, 40u, 90u, 250u}) {
      env.ArmAfter(k);
      auto result = server.Submit(24, 24);
      env.Disarm();
      ASSERT_FALSE(result.ok()) << "spill-path fault at op " << k
                                << " swallowed (write_behind=" << write_behind
                                << ")";
      EXPECT_EQ(result.status().code(), Status::Code::kIOError)
          << "op " << k << ", write_behind=" << write_behind;
      auto after = server.Submit(24, 24);
      ASSERT_TRUE(after.ok())
          << "server wedged after fault at op " << k
          << " (write_behind=" << write_behind << "): "
          << after.status().ToString();
      EXPECT_EQ(after->total_weight, want->total_weight);
    }
  }
}

TEST(FaultRecoveryTest, RerunAfterFaultSucceeds) {
  // After a failed run, the Env may hold leftover scratch files, but a fresh
  // run must still produce the correct answer.
  auto base = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(800, 300, 9);
  ASSERT_TRUE(WriteDataset(*base, "data", objects).ok());
  FaultEnv env(*base);
  MaxRSOptions options;
  options.rect_width = 16;
  options.rect_height = 16;
  options.memory_bytes = 1 << 13;
  options.fanout = 3;
  options.base_case_max_pieces = 32;

  env.ArmAfter(150);
  auto failed = RunExactMaxRS(env, "data", options);
  EXPECT_FALSE(failed.ok());
  env.Disarm();

  auto retry = RunExactMaxRS(env, "data", options);
  ASSERT_TRUE(retry.ok());
  auto clean_env = NewMemEnv(512);
  auto want = RunExactMaxRS(*clean_env, objects, options);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(retry->total_weight, want->total_weight);
}

}  // namespace
}  // namespace maxrs
