#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "io/temp_manager.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace maxrs {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.NextU64() != c.NextU64());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(10.0, 20.0);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
  }
}

TEST(RngTest, UniformU64Unbiased) {
  Rng rng(11);
  int counts[10] = {};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformU64(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(counts[b], trials / 10, 500) << "bucket " << b;
  }
}

TEST(RngTest, NormalMomentsLookRight) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=3",  "--beta", "7",
                        "--gamma",    "--no-delta", "pos1",   "--eps=x y",
                        "positional2"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(9, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_FALSE(flags.GetBool("delta", true));
  EXPECT_EQ(flags.GetString("eps", ""), "x y");
  EXPECT_EQ(flags.GetDouble("missing", 2.5), 2.5);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.Reset();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(TempManagerTest, UniqueNamesAndRelease) {
  auto env = NewMemEnv(512);
  TempFileManager temps(*env, "t");
  std::set<std::string> names;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(names.insert(temps.NewName("x")).second);
  }
  const std::string name = temps.NewName("y");
  ASSERT_TRUE(env->Create(name).ok());
  EXPECT_TRUE(env->Exists(name));
  temps.Release(name);
  EXPECT_FALSE(env->Exists(name));
  temps.Release(name);  // double release is harmless
}

}  // namespace
}  // namespace maxrs
