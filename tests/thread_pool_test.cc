#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace maxrs {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&counter] {
      counter.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  // Serial fallback: tasks execute immediately, in submission order, on the
  // calling thread.
  std::vector<int> order;
  TaskGroup group(nullptr);
  for (int i = 0; i < 5; ++i) {
    group.Run([&order, i] {
      order.push_back(i);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGroupTest, PropagatesFirstError) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) {
    group.Run([i]() -> Status {
      if (i == 7) return Status::IOError("task 7 failed");
      return Status::OK();
    });
  }
  const Status st = group.Wait();
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST(TaskGroupTest, ShortCircuitsAfterFirstErrorInline) {
  // Serial semantics: once a task fails, later Run() calls must not execute
  // (the early-return a plain status-checking loop would do).
  int executed = 0;
  TaskGroup group(nullptr);
  for (int i = 0; i < 10; ++i) {
    group.Run([&executed, i]() -> Status {
      ++executed;
      if (i == 3) return Status::IOError("disk full");
      return Status::OK();
    });
  }
  EXPECT_EQ(group.Wait().code(), Status::Code::kIOError);
  EXPECT_EQ(executed, 4);  // tasks 0..3 ran; 4..9 were skipped
}

TEST(TaskGroupTest, ErrorIsStickyAcrossWaits) {
  TaskGroup group(nullptr);
  group.Run([] { return Status::Internal("boom"); });
  EXPECT_EQ(group.Wait().code(), Status::Code::kInternal);
  group.Run([] { return Status::OK(); });
  EXPECT_EQ(group.Wait().code(), Status::Code::kInternal);
}

TEST(TaskGroupTest, NestedGroupsDoNotDeadlockOnSaturatedPool) {
  // Recursion-shaped load on a 2-thread pool: every task spawns a nested
  // group and waits for it. Without help-while-waiting this deadlocks as
  // soon as both workers block in a nested Wait.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};

  std::function<Status(int)> recurse = [&](int depth) -> Status {
    if (depth == 0) {
      leaves.fetch_add(1);
      return Status::OK();
    }
    TaskGroup group(&pool);
    for (int i = 0; i < 3; ++i) {
      group.Run([&recurse, depth] { return recurse(depth - 1); });
    }
    return group.Wait();
  };

  EXPECT_TRUE(recurse(4).ok());
  EXPECT_EQ(leaves.load(), 81);  // 3^4
}

TEST(ParallelForTest, FillsSlotsByIndexDeterministically) {
  ThreadPool pool(4);
  std::vector<uint64_t> squares(1000, 0);
  const Status st = ParallelFor(&pool, 0, squares.size(), [&](size_t i) {
    squares[i] = i * i;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelForTest, SerialFallbackMatchesPool) {
  std::vector<int> serial(64), pooled(64);
  ASSERT_TRUE(ParallelFor(nullptr, 0, 64, [&](size_t i) {
                serial[i] = static_cast<int>(3 * i + 1);
                return Status::OK();
              }).ok());
  ThreadPool pool(3);
  ASSERT_TRUE(ParallelFor(&pool, 0, 64, [&](size_t i) {
                pooled[i] = static_cast<int>(3 * i + 1);
                return Status::OK();
              }).ok());
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace maxrs
