#include "util/logging.h"

#include <gtest/gtest.h>

namespace maxrs {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, EmitBelowAndAboveThresholdDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  // Suppressed (below threshold) and emitted (at/above threshold) paths.
  MAXRS_LOG_DEBUG("suppressed %d", 1);
  MAXRS_LOG_INFO("suppressed %s", "too");
  MAXRS_LOG_WARN("emitted %d", 2);
  MAXRS_LOG_ERROR("emitted %s", "as well");
  SetLogLevel(LogLevel::kOff);
  MAXRS_LOG_ERROR("suppressed at kOff");
  SetLogLevel(original);
}

}  // namespace
}  // namespace maxrs
