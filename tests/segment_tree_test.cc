#include "core/segment_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace maxrs {
namespace {

/// Reference implementation: plain array.
class NaiveTree {
 public:
  explicit NaiveTree(size_t n) : values_(n, 0.0) {}

  void RangeAdd(size_t first, size_t last, double w) {
    for (size_t i = first; i <= last; ++i) values_[i] += w;
  }

  double Max() const { return *std::max_element(values_.begin(), values_.end()); }

  MaxRun MaxInterval() const {
    const double m = Max();
    MaxRun run{m, 0, 0};
    for (size_t i = 0; i < values_.size(); ++i) {
      if (values_[i] == m) {
        run.first = i;
        size_t j = i;
        while (j + 1 < values_.size() && values_[j + 1] == m) ++j;
        run.last = j;
        return run;
      }
    }
    return run;
  }

 private:
  std::vector<double> values_;
};

TEST(SegmentTreeTest, SingleLeaf) {
  SegmentTree tree(1);
  EXPECT_EQ(tree.Max(), 0.0);
  tree.RangeAdd(0, 0, 5.0);
  EXPECT_EQ(tree.Max(), 5.0);
  MaxRun run = tree.MaxInterval();
  EXPECT_EQ(run.first, 0u);
  EXPECT_EQ(run.last, 0u);
  EXPECT_EQ(run.value, 5.0);
}

TEST(SegmentTreeTest, DisjointAdds) {
  SegmentTree tree(10);
  tree.RangeAdd(0, 2, 1.0);
  tree.RangeAdd(5, 9, 2.0);
  EXPECT_EQ(tree.Max(), 2.0);
  MaxRun run = tree.MaxInterval();
  EXPECT_EQ(run.first, 5u);
  EXPECT_EQ(run.last, 9u);
}

TEST(SegmentTreeTest, OverlappingAddsStack) {
  SegmentTree tree(8);
  tree.RangeAdd(0, 5, 1.0);
  tree.RangeAdd(3, 7, 1.0);
  tree.RangeAdd(4, 4, 1.0);
  EXPECT_EQ(tree.Max(), 3.0);
  MaxRun run = tree.MaxInterval();
  EXPECT_EQ(run.first, 4u);
  EXPECT_EQ(run.last, 4u);
}

TEST(SegmentTreeTest, RemovalRestoresState) {
  SegmentTree tree(6);
  tree.RangeAdd(1, 4, 3.0);
  tree.RangeAdd(2, 3, 2.0);
  tree.RangeAdd(1, 4, -3.0);
  EXPECT_EQ(tree.Max(), 2.0);
  MaxRun run = tree.MaxInterval();
  EXPECT_EQ(run.first, 2u);
  EXPECT_EQ(run.last, 3u);
}

TEST(SegmentTreeTest, MaximalRunStopsBeforeLowerValue) {
  SegmentTree tree(5);
  tree.RangeAdd(0, 4, 1.0);
  tree.RangeAdd(0, 2, 1.0);  // values: 2 2 2 1 1
  MaxRun run = tree.MaxInterval();
  EXPECT_EQ(run.value, 2.0);
  EXPECT_EQ(run.first, 0u);
  EXPECT_EQ(run.last, 2u);
}

TEST(SegmentTreeTest, AllZeroReportsFullRange) {
  SegmentTree tree(7);
  MaxRun run = tree.MaxInterval();
  EXPECT_EQ(run.value, 0.0);
  EXPECT_EQ(run.first, 0u);
  EXPECT_EQ(run.last, 6u);
}

class SegmentTreeRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SegmentTreeRandomTest, MatchesNaiveReference) {
  const size_t n = GetParam();
  SegmentTree tree(n);
  NaiveTree naive(n);
  Rng rng(n * 7919 + 13);
  for (int step = 0; step < 500; ++step) {
    size_t a = rng.UniformU64(n);
    size_t b = rng.UniformU64(n);
    if (a > b) std::swap(a, b);
    // Integer weights: comparisons stay exact.
    const double w = static_cast<double>(1 + rng.UniformU64(5)) *
                     (rng.NextDouble() < 0.4 ? -1.0 : 1.0);
    tree.RangeAdd(a, b, w);
    naive.RangeAdd(a, b, w);
    ASSERT_EQ(tree.Max(), naive.Max()) << "step " << step;
    const MaxRun got = tree.MaxInterval();
    const MaxRun want = naive.MaxInterval();
    ASSERT_EQ(got.value, want.value) << "step " << step;
    ASSERT_EQ(got.first, want.first) << "step " << step;
    ASSERT_EQ(got.last, want.last) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SegmentTreeRandomTest,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 100, 257));

}  // namespace
}  // namespace maxrs
