// Stress/soak battery for the server's concurrency features: 8 workers x
// 64 in-flight queries with a 75% duplicate rate, exercising in-flight
// dedup (duplicates of an executing query attach to the leader's pending
// slot; exactly one leader solve runs per distinct rect), the LRU for
// late duplicates, and the shutdown path under load. Built to run under
// ThreadSanitizer (cmake -DMAXRS_SANITIZE=thread; see the `tsan` CI job):
// the assertions are deterministic, so a pass is meaningful with and
// without instrumentation.
#include <atomic>
#include <thread>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr size_t kClients = 8;
constexpr size_t kQueries = 64;
constexpr size_t kDistinct = 16;  // 64 queries over 16 rects = 75% dupes

std::unique_ptr<Env> MakeEnv(std::vector<SpatialObject>* out = nullptr) {
  auto env = NewMemEnv(4096);
  std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/1500, /*extent=*/2000, /*seed=*/23, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  if (out != nullptr) *out = objects;
  return env;
}

// The scripted workload: query q uses rect q % kDistinct, so every distinct
// rect appears exactly kQueries / kDistinct times.
void RectOf(size_t q, double* w, double* h) {
  const size_t r = q % kDistinct;
  *w = 60.0 + 20.0 * static_cast<double>(r);
  *h = 340.0 - 15.0 * static_cast<double>(r);
}

TEST(ServeStressTest, DedupedInFlightDuplicatesSolveOncePerRect) {
  auto env = MakeEnv();
  auto handle = [&] {
    DatasetHandleOptions options;
    options.shard_count = 4;
    options.memory_bytes = 64 * 1024;
    return DatasetHandle::Ingest(*env, kDatasetFile, options);
  }();
  ASSERT_TRUE(handle.ok());

  MaxRSServerOptions options;
  options.num_workers = kClients;
  options.memory_bytes = 64 * 1024;
  options.cache_entries = kDistinct;  // late duplicates hit the LRU
  options.queue_capacity = kQueries;  // every query can be in flight at once
  MaxRSServer server(*env, *handle, options);

  // One-shot references for every distinct rect.
  std::vector<MaxRSResult> expected(kDistinct);
  {
    auto reference_env = MakeEnv();
    for (size_t r = 0; r < kDistinct; ++r) {
      MaxRSOptions one_shot;
      RectOf(r, &one_shot.rect_width, &one_shot.rect_height);
      one_shot.memory_bytes = 64 * 1024;
      auto result = RunExactMaxRS(*reference_env, kDatasetFile, one_shot);
      ASSERT_TRUE(result.ok());
      expected[r] = *result;
    }
  }

  // Fire all 64 queries from 8 clients at once (atomic ticket draw, so the
  // interleaving of duplicates across workers varies run to run — that is
  // the point of a soak).
  std::vector<MaxRSResult> got(kQueries);
  std::vector<Status> statuses(kQueries, Status::OK());
  std::atomic<size_t> ticket{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const size_t q = ticket.fetch_add(1);
        if (q >= kQueries) return;
        double w = 0.0, h = 0.0;
        RectOf(q, &w, &h);
        auto result = server.Submit(w, h);
        statuses[q] = result.status();
        if (result.ok()) got[q] = *result;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(statuses[q].ok()) << "query " << q << ": "
                                  << statuses[q].ToString();
    const MaxRSResult& want = expected[q % kDistinct];
    EXPECT_EQ(got[q].total_weight, want.total_weight) << "query " << q;
    EXPECT_EQ(got[q].location, want.location) << "query " << q;
    EXPECT_EQ(got[q].region, want.region) << "query " << q;
  }

  // One leader solve per distinct rect; every duplicate either attached to
  // an in-flight leader or hit the cache afterwards.
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, kQueries);
  EXPECT_EQ(counters.executed, kDistinct);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.dedup_hits + counters.cache_hits, kQueries - kDistinct);
}

TEST(ServeStressTest, ShutdownUnderLoadFailsFollowersCleanly) {
  // Submitters racing a Shutdown must each get a definite outcome: a real
  // result (the queue drains in-flight queries) or NotSupported — never a
  // hang or a broken promise, including followers attached to a leader
  // whose Push lost the race with Close.
  auto env = MakeEnv();
  auto handle = [&] {
    DatasetHandleOptions options;
    options.shard_count = 2;
    options.memory_bytes = 64 * 1024;
    return DatasetHandle::Ingest(*env, kDatasetFile, options);
  }();
  ASSERT_TRUE(handle.ok());

  for (int round = 0; round < 4; ++round) {
    MaxRSServerOptions options;
    options.num_workers = 2;
    options.memory_bytes = 64 * 1024;
    options.cache_entries = 0;  // keep every submit on the execute path
    MaxRSServer server(*env, *handle, options);

    std::atomic<size_t> done{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        for (size_t q = 0; q < 8; ++q) {
          double w = 0.0, h = 0.0;
          RectOf((c + q) % 3, &w, &h);  // heavy duplication across clients
          auto result = server.Submit(w, h);
          EXPECT_TRUE(result.ok() ||
                      result.status().code() == Status::Code::kNotSupported)
              << result.status().ToString();
          done.fetch_add(1);
        }
      });
    }
    // Let some queries through, then slam the door mid-traffic.
    while (done.load() < 2) std::this_thread::yield();
    server.Shutdown();
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(done.load(), 32u);
  }
}

}  // namespace
}  // namespace maxrs
