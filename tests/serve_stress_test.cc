// Stress/soak battery for the server's concurrency features: 8 workers x
// 64 in-flight queries with a 75% duplicate rate, exercising in-flight
// dedup (duplicates of an executing query attach to the leader's pending
// slot; exactly one leader solve runs per distinct rect), the LRU for
// late duplicates, and the shutdown path under load. Built to run under
// ThreadSanitizer (cmake -DMAXRS_SANITIZE=thread; see the `tsan` CI job):
// the assertions are deterministic, so a pass is meaningful with and
// without instrumentation.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr size_t kClients = 8;
constexpr size_t kQueries = 64;
constexpr size_t kDistinct = 16;  // 64 queries over 16 rects = 75% dupes

std::unique_ptr<Env> MakeEnv(std::vector<SpatialObject>* out = nullptr) {
  auto env = NewMemEnv(4096);
  std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/1500, /*extent=*/2000, /*seed=*/23, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  if (out != nullptr) *out = objects;
  return env;
}

// The scripted workload: query q uses rect q % kDistinct, so every distinct
// rect appears exactly kQueries / kDistinct times.
void RectOf(size_t q, double* w, double* h) {
  const size_t r = q % kDistinct;
  *w = 60.0 + 20.0 * static_cast<double>(r);
  *h = 340.0 - 15.0 * static_cast<double>(r);
}

TEST(ServeStressTest, DedupedInFlightDuplicatesSolveOncePerRect) {
  auto env = MakeEnv();
  auto handle = [&] {
    DatasetHandleOptions options;
    options.shard_count = 4;
    options.memory_bytes = 64 * 1024;
    return DatasetHandle::Ingest(*env, kDatasetFile, options);
  }();
  ASSERT_TRUE(handle.ok());

  MaxRSServerOptions options;
  options.num_workers = kClients;
  options.memory_bytes = 64 * 1024;
  options.cache_entries = kDistinct;  // late duplicates hit the LRU
  options.queue_capacity = kQueries;  // every query can be in flight at once
  MaxRSServer server(*env, *handle, options);

  // One-shot references for every distinct rect.
  std::vector<MaxRSResult> expected(kDistinct);
  {
    auto reference_env = MakeEnv();
    for (size_t r = 0; r < kDistinct; ++r) {
      MaxRSOptions one_shot;
      RectOf(r, &one_shot.rect_width, &one_shot.rect_height);
      one_shot.memory_bytes = 64 * 1024;
      auto result = RunExactMaxRS(*reference_env, kDatasetFile, one_shot);
      ASSERT_TRUE(result.ok());
      expected[r] = *result;
    }
  }

  // Fire all 64 queries from 8 clients at once (atomic ticket draw, so the
  // interleaving of duplicates across workers varies run to run — that is
  // the point of a soak).
  std::vector<MaxRSResult> got(kQueries);
  std::vector<Status> statuses(kQueries, Status::OK());
  std::atomic<size_t> ticket{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const size_t q = ticket.fetch_add(1);
        if (q >= kQueries) return;
        double w = 0.0, h = 0.0;
        RectOf(q, &w, &h);
        auto result = server.Submit(w, h);
        statuses[q] = result.status();
        if (result.ok()) got[q] = *result;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(statuses[q].ok()) << "query " << q << ": "
                                  << statuses[q].ToString();
    const MaxRSResult& want = expected[q % kDistinct];
    EXPECT_EQ(got[q].total_weight, want.total_weight) << "query " << q;
    EXPECT_EQ(got[q].location, want.location) << "query " << q;
    EXPECT_EQ(got[q].region, want.region) << "query " << q;
  }

  // One leader solve per distinct rect; every duplicate either attached to
  // an in-flight leader or hit the cache afterwards.
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, kQueries);
  EXPECT_EQ(counters.executed, kDistinct);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.dedup_hits + counters.cache_hits, kQueries - kDistinct);
}

// Env wrapper whose ReadBlock parks while the gate is closed. Wedging the
// single worker mid-query makes queue/admission/deadline states reachable
// deterministically — no sleeps standing in for synchronization.
class GateEnv : public Env {
 public:
  explicit GateEnv(Env& base) : base_(base) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  /// Spins until some reader is parked on the closed gate.
  void WaitUntilBlocked() const {
    while (blocked_.load() == 0) std::this_thread::yield();
  }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override {
    return base_.Create(name);
  }
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override {
    auto file_or = base_.Open(name);
    if (!file_or.ok()) return {file_or.status()};
    return {std::unique_ptr<BlockFile>(
        new GateFile(std::move(file_or).value(), this))};
  }
  Status Delete(const std::string& name) override {
    return base_.Delete(name);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_.Rename(from, to);
  }
  bool Exists(const std::string& name) const override {
    return base_.Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_.ListFiles();
  }
  size_t block_size() const override { return base_.block_size(); }
  IoStats& stats() override { return base_.stats(); }

 private:
  class GateFile : public BlockFile {
   public:
    GateFile(std::unique_ptr<BlockFile> base, GateEnv* env)
        : base_(std::move(base)), env_(env) {}
    Status ReadBlock(uint64_t index, void* buf) override {
      env_->Block();
      return base_->ReadBlock(index, buf);
    }
    Status WriteBlock(uint64_t index, const void* buf) override {
      return base_->WriteBlock(index, buf);
    }
    uint64_t NumBlocks() const override { return base_->NumBlocks(); }
    Status Truncate(uint64_t num_blocks) override {
      return base_->Truncate(num_blocks);
    }
    size_t block_size() const override { return base_->block_size(); }
    const std::string& name() const override { return base_->name(); }

   private:
    std::unique_ptr<BlockFile> base_;
    GateEnv* env_;
  };

  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    if (open_) return;
    blocked_.fetch_add(1);
    cv_.wait(lock, [this] { return open_; });
    blocked_.fetch_sub(1);
  }

  Env& base_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  std::atomic<int> blocked_{0};
};

TEST(ServeStressTest, FullQueuePastAdmissionBudgetShedsWithUnavailable) {
  // Regression: Submit used to block indefinitely on a full queue. With a
  // bounded admission budget the third query — one executing (wedged on
  // the gate), one occupying the single queue slot — must be refused with
  // kUnavailable, not park the submitter.
  auto base = MakeEnv();
  GateEnv env(*base);
  auto handle = [&] {
    DatasetHandleOptions options;
    options.shard_count = 2;
    options.memory_bytes = 64 * 1024;
    return DatasetHandle::Ingest(env, kDatasetFile, options);
  }();
  ASSERT_TRUE(handle.ok());

  MaxRSServerOptions options;
  options.num_workers = 1;
  options.memory_bytes = 64 * 1024;
  options.cache_entries = 0;  // keep every submit on the execute path
  options.queue_capacity = 1;
  options.admission_timeout_ms = 0;  // shed the moment the queue is full
  MaxRSServer server(env, *handle, options);

  env.CloseGate();
  std::thread first([&] {
    auto result = server.Submit(60.0, 340.0);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  env.WaitUntilBlocked();  // the only worker is wedged mid-query
  std::thread second([&] {
    auto result = server.Submit(80.0, 325.0);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  while (server.queue_depth() < 1) std::this_thread::yield();

  auto shed = server.Submit(100.0, 310.0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(server.counters().shed, 1u);

  env.OpenGate();
  first.join();
  second.join();
  EXPECT_EQ(server.counters().failed, 0u);
}

TEST(ServeStressTest, ExpiredDeadlinesFailCleanlyWithDeadlineExceeded) {
  // One query wedged on the gate past its deadline, one expiring in the
  // queue behind it. Both must unwind with kDeadlineExceeded — channels
  // closed, no hang — and be counted.
  auto base = MakeEnv();
  GateEnv env(*base);
  auto handle = [&] {
    DatasetHandleOptions options;
    options.shard_count = 2;
    options.memory_bytes = 64 * 1024;
    return DatasetHandle::Ingest(env, kDatasetFile, options);
  }();
  ASSERT_TRUE(handle.ok());

  MaxRSServerOptions options;
  options.num_workers = 1;
  options.memory_bytes = 64 * 1024;
  options.cache_entries = 0;
  options.deadline_ms = 5;
  MaxRSServer server(env, *handle, options);

  env.CloseGate();
  std::thread first([&] {
    auto result = server.Submit(60.0, 340.0);
    EXPECT_EQ(result.status().code(), Status::Code::kDeadlineExceeded)
        << result.status().ToString();
  });
  env.WaitUntilBlocked();
  std::thread second([&] {
    auto result = server.Submit(80.0, 325.0);
    EXPECT_EQ(result.status().code(), Status::Code::kDeadlineExceeded)
        << result.status().ToString();
  });
  while (server.queue_depth() < 1) std::this_thread::yield();
  // Hold the gate until both tokens are unambiguously past their 5 ms
  // deadline, then release: the wedged query observes expiry at its next
  // poll, the queued one before it touches the Env at all.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  env.OpenGate();
  first.join();
  second.join();

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.deadlines, 2u);
  EXPECT_EQ(counters.failed, 2u);
  EXPECT_EQ(counters.degraded, 0u);  // deadline errors are never re-run
}

TEST(ServeStressTest, ShutdownUnderLoadFailsFollowersCleanly) {
  // Submitters racing a Shutdown must each get a definite outcome: a real
  // result (the queue drains in-flight queries) or NotSupported — never a
  // hang or a broken promise, including followers attached to a leader
  // whose Push lost the race with Close.
  auto env = MakeEnv();
  auto handle = [&] {
    DatasetHandleOptions options;
    options.shard_count = 2;
    options.memory_bytes = 64 * 1024;
    return DatasetHandle::Ingest(*env, kDatasetFile, options);
  }();
  ASSERT_TRUE(handle.ok());

  for (int round = 0; round < 4; ++round) {
    MaxRSServerOptions options;
    options.num_workers = 2;
    options.memory_bytes = 64 * 1024;
    options.cache_entries = 0;  // keep every submit on the execute path
    MaxRSServer server(*env, *handle, options);

    std::atomic<size_t> done{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        for (size_t q = 0; q < 8; ++q) {
          double w = 0.0, h = 0.0;
          RectOf((c + q) % 3, &w, &h);  // heavy duplication across clients
          auto result = server.Submit(w, h);
          EXPECT_TRUE(result.ok() ||
                      result.status().code() == Status::Code::kNotSupported)
              << result.status().ToString();
          done.fetch_add(1);
        }
      });
    }
    // Let some queries through, then slam the door mid-traffic.
    while (done.load() < 2) std::this_thread::yield();
    server.Shutdown();
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(done.load(), 32u);
  }
}

}  // namespace
}  // namespace maxrs
