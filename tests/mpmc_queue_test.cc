// Tests for the bounded MPMC queue feeding the serve layer: FIFO semantics,
// backpressure, close/drain behaviour, move-only payloads, and an MPMC
// stress run checking exactly-once delivery.
#include "util/mpmc_queue.h"

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace maxrs {
namespace {

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueueTest, CapacityClampedToOne) {
  MpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.Push(7));
  EXPECT_EQ(q.size(), 1u);
}

TEST(MpmcQueueTest, TryPopDoesNotBlock) {
  MpmcQueue<int> q(2);
  int v = 0;
  EXPECT_FALSE(q.TryPop(&v));
  EXPECT_TRUE(q.Push(3));
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 3);
}

TEST(MpmcQueueTest, PushBlocksUntilRoom) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer cannot complete while the queue is full.
  EXPECT_EQ(q.size(), 1u);
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.Pop(&v));  // blocked empty Pop returns false on Close
  });
  q.Close();
  consumer.join();
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueueTest, CloseWakesBlockedProducerAndRefusesPush) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(2));  // blocked full Push returns false on Close
  });
  q.Close();
  producer.join();
  EXPECT_FALSE(q.Push(3));
}

TEST(MpmcQueueTest, QueuedItemsDrainAfterClose) {
  MpmcQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // drained
}

TEST(MpmcQueueTest, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.Push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.Pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(MpmcQueueTest, ExactlyOnceDeliveryUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  MpmcQueue<int> q(8);

  std::vector<std::thread> threads;
  std::atomic<long long> sum{0};
  std::atomic<int> delivered{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v = 0;
      while (q.Pop(&v)) {
        sum.fetch_add(v);
        delivered.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  // Join producers (the last kProducers threads), then close to end consumers.
  for (int p = 0; p < kProducers; ++p) threads[kConsumers + p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(delivered.load(), total);
  // Sum of 0..total-1: every item delivered exactly once.
  EXPECT_EQ(sum.load(), static_cast<long long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace maxrs
