#!/usr/bin/env python3
"""Doc-coverage lint for public headers.

Fails when a public symbol in the given directories' headers lacks a doc
comment on the line immediately above its declaration. Registered as the
`doc_coverage` CTest test and run in CI for `src/core` and `src/serve` —
the modules whose headers are the library's public API surface (see
ISSUE/PR history; docs/ARCHITECTURE.md points into them).

What counts as a documentable symbol (kept deliberately pragmatic — this
is a header-comment lint, not a C++ parser):

  - class / struct / enum *definitions* at namespace scope or in a public
    section of an enclosing documented type (forward declarations exempt);
  - function declarations at namespace scope or in a public section
    (anything with a parameter list), including constructors;

with these exemptions:

  - `= default` / `= delete` members and destructors (self-evident),
  - deleted-by-convention copy/move pairs,
  - `friend` declarations, `using` aliases, member variables (struct
    fields are covered by their struct's doc), access specifiers.

A doc comment is any `//`-style comment (incl. `///`) or the tail of a
`/* ... */` block ending on the immediately preceding line.

Usage: check_doc_coverage.py DIR [DIR...]
Exit codes: 0 = fully documented, 1 = gaps found, 2 = usage error.
"""

import os
import re
import sys

CANDIDATE_TYPE = re.compile(r"^(template\s*<.*>\s*)?(class|struct|enum(\s+class|\s+struct)?)\s+([A-Za-z_]\w*)")
ACCESS = re.compile(r"^\s*(public|private|protected)\s*:")
SKIP_PREFIXES = (
    "#", "//", "using ", "typedef ", "friend ", "extern ", "static_assert",
    "public:", "private:", "protected:", "}", "{", ")", ":",
)


def is_doc_line(line):
    stripped = line.strip()
    return stripped.startswith("//") or stripped.endswith("*/")


def strip_comments_and_strings(line, in_block):
    """Returns (code_without_comments, still_in_block_comment)."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        ch = line[i]
        nxt = line[i:i + 2]
        if nxt == "//":
            break
        if nxt == "/*":
            in_block = True
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < len(line):
                out.append(line[i])
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block


class Scope:
    def __init__(self, kind, access="public"):
        self.kind = kind      # "namespace" | "type" | "block"
        self.access = access  # current access inside a type


def documentable(stack):
    for scope in stack:
        if scope.kind == "block":
            return False
        if scope.kind == "type" and scope.access != "public":
            return False
    return True


def check_file(path):
    with open(path, "r", encoding="utf-8") as f:
        raw_lines = f.readlines()

    problems = []
    stack = []
    in_block_comment = False
    pending = None  # dict(start, text, documented) while accumulating a decl

    for lineno, raw in enumerate(raw_lines, 1):
        code, in_block_comment = strip_comments_and_strings(
            raw.rstrip("\n"), in_block_comment)
        stripped = code.strip()

        if pending is None and stripped and documentable(stack):
            access_m = ACCESS.match(stripped)
            if access_m and stack and stack[-1].kind == "type":
                stack[-1].access = access_m.group(1)
            elif not any(stripped.startswith(p) for p in SKIP_PREFIXES):
                type_m = CANDIDATE_TYPE.match(stripped)
                is_function = "(" in stripped and not type_m
                if type_m or is_function or stripped.startswith("template"):
                    pending = {
                        "start": lineno,
                        "text": stripped,
                        "documented": lineno > 1 and is_doc_line(raw_lines[lineno - 2]),
                    }
        elif pending is not None:
            pending["text"] += " " + stripped

        closed_text = None  # full text of a declaration that ended this line
        if pending is not None:
            text = pending["text"]
            # A declaration closes at its body brace or at `;` outside parens.
            done = "{" in code
            if not done and ";" in code and text.count("(") == text.count(")"):
                done = True
            if done:
                report_pending(path, pending, problems)
                closed_text = pending["text"]
                pending = None

        # Maintain the scope stack from the braces of this line. A brace
        # that closes an accumulated declaration is classified from the
        # FULL declaration text, so multi-line class heads
        # (`class Foo\n    : public Bar {`) still open a "type" scope and
        # their members stay linted.
        for ch in code:
            if ch == "{":
                classify = closed_text if closed_text is not None else stripped
                kind = "block"
                if stripped.startswith("namespace") or " namespace " in code:
                    kind = "namespace"
                elif CANDIDATE_TYPE.match(classify) or re.match(
                        r"^(class|struct|enum)", classify):
                    kind = "type"
                stack.append(Scope(kind, "public"))
            elif ch == "}":
                if stack:
                    stack.pop()
    return problems


def report_pending(path, pending, problems):
    text = pending["text"]
    if pending["documented"]:
        return
    # Exemptions: self-evident or non-API declarations.
    if "= default" in text or "= delete" in text:
        return
    if re.search(r"~\s*[A-Za-z_]\w*\s*\(", text):  # destructor
        return
    type_m = CANDIDATE_TYPE.match(text)
    if type_m:
        body_less = "{" not in text and text.rstrip().endswith(";")
        if body_less:
            return  # forward declaration
        name = type_m.group(4)
        problems.append((path, pending["start"], f"type '{name}'"))
        return
    if "(" not in text:
        return  # member variable or similar; fields ride on the type's doc
    name_m = re.search(r"([A-Za-z_~]\w*)\s*\(", text)
    name = name_m.group(1) if name_m else text[:40]
    if name in ("MAXRS_CHECK", "MAXRS_DCHECK"):
        return
    problems.append((path, pending["start"], f"function '{name}'"))


def main():
    if len(sys.argv) < 2:
        sys.stderr.write(__doc__)
        sys.exit(2)
    headers = []
    for directory in sys.argv[1:]:
        if not os.path.isdir(directory):
            sys.stderr.write(f"not a directory: {directory}\n")
            sys.exit(2)
        for root, _, files in os.walk(directory):
            headers.extend(os.path.join(root, f) for f in sorted(files)
                           if f.endswith(".h"))
    if not headers:
        sys.stderr.write("no headers found\n")
        sys.exit(2)

    all_problems = []
    for path in sorted(headers):
        all_problems.extend(check_file(path))

    if all_problems:
        for path, lineno, what in all_problems:
            print(f"{path}:{lineno}: undocumented public {what}")
        print(f"\n{len(all_problems)} undocumented public symbol(s) across "
              f"{len(headers)} header(s)")
        sys.exit(1)
    print(f"doc coverage OK: {len(headers)} header(s) fully documented")
    sys.exit(0)


if __name__ == "__main__":
    main()
